"""Synthetic image datasets standing in for CIFAR-10 and FEMNIST.

Construction principles (what makes these valid FL substitutes):

- **Class structure**: each class has fixed low-frequency prototype
  templates; instances are prototypes + instance-level jitter + pixel noise,
  so models must actually learn class structure (a linear probe is far from
  100%) yet CNN-scale models can overfit a small local shard — the regime in
  which non-IID FL pathologies (client drift, divergence) appear.
- **Determinism**: everything derives from one root seed through
  ``SeedSequence`` spawning; the same seed always yields bit-identical data.
- **FEMNIST writer styles**: each synthetic writer has an intensity/shift
  style transform applied to every sample they "write", giving LEAF's
  natural per-user distribution shift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rng


@dataclass
class ArrayDataset:
    """In-memory dataset: ``x`` (N, C, H, W) float32, ``y`` (N,) int64."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float32)
        self.y = np.asarray(self.y, dtype=np.int64)
        if len(self.x) != len(self.y):
            raise ValueError("x and y length mismatch")

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, indices) -> "ArrayDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.x[indices], self.y[indices])

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self.y) else 0

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        k = num_classes or self.num_classes
        return np.bincount(self.y, minlength=k)


def _upsample(coarse: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour upsample of (..., h, w) coarse maps to (..., size, size)."""
    h = coarse.shape[-1]
    reps = size // h
    out = np.kron(coarse, np.ones((reps, reps), dtype=coarse.dtype))
    if out.shape[-1] < size:
        pad = size - out.shape[-1]
        out = np.pad(out, [(0, 0)] * (out.ndim - 2) + [(0, pad), (0, pad)], mode="edge")
    return out


def _make_prototypes(rng: np.random.Generator, num_classes: int, channels: int,
                     size: int, prototypes_per_class: int) -> np.ndarray:
    """(K, P, C, size, size) low-frequency class templates."""
    coarse_hw = max(2, size // 8)
    coarse = rng.normal(0.0, 1.0, size=(num_classes, prototypes_per_class,
                                        channels, coarse_hw, coarse_hw))
    templates = _upsample(coarse.astype(np.float32), size)
    # Add a class-specific oriented frequency component so classes differ in
    # texture, not just blob layout.
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32) / size
    for k in range(num_classes):
        angle = 2 * np.pi * k / num_classes
        freq = 2.0 + (k % 4)
        wave = np.sin(2 * np.pi * freq * (np.cos(angle) * xx + np.sin(angle) * yy))
        templates[k] += 0.8 * wave
    return templates


def _roll2d(batch: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Independently roll each (C, H, W) image by its (dy, dx) shift."""
    out = np.empty_like(batch)
    for i, (dy, dx) in enumerate(shifts):
        out[i] = np.roll(batch[i], (int(dy), int(dx)), axis=(1, 2))
    return out


class SyntheticCIFAR10(ArrayDataset):
    """CIFAR-10 stand-in: (N, 3, size, size), 10 balanced classes.

    ``noise`` controls difficulty; at the default 0.9 a width-0.25
    ResNet-20 reaches ~80-90% centralized accuracy after a few epochs while
    single-client shards can be overfitted — matching the FL regime.
    """

    def __init__(self, n_samples: int = 10_000, size: int = 32, seed: int = 0,
                 num_classes: int = 10, noise: float = 0.9,
                 prototypes_per_class: int = 4, split: str = "train"):
        rng_proto = spawn_rng(seed, "cifar", "prototypes")
        rng_inst = spawn_rng(seed, "cifar", "instances", split)
        templates = _make_prototypes(rng_proto, num_classes, 3, size,
                                     prototypes_per_class)
        y = rng_inst.integers(0, num_classes, size=n_samples)
        proto_idx = rng_inst.integers(0, prototypes_per_class, size=n_samples)
        x = templates[y, proto_idx].copy()
        shifts = rng_inst.integers(-size // 8, size // 8 + 1, size=(n_samples, 2))
        x = _roll2d(x, shifts)
        x += rng_inst.normal(0.0, noise, size=x.shape).astype(np.float32)
        # per-channel standardisation (the usual CIFAR transform)
        mu = x.mean(axis=(0, 2, 3), keepdims=True)
        sd = x.std(axis=(0, 2, 3), keepdims=True) + 1e-6
        x = (x - mu) / sd
        super().__init__(x, y)
        self.size = size
        self.seed = seed


class SyntheticFEMNIST(ArrayDataset):
    """FEMNIST stand-in: (N, 1, size, size) with per-writer style shift.

    Samples are grouped by synthetic writer; :attr:`writer_ids` records each
    sample's author so :func:`repro.data.partition.by_writer_partition` can
    reproduce LEAF's natural non-IID split.  ``num_classes`` defaults to 62
    (digits + upper + lower) like FEMNIST; scaled configs may use 10.
    """

    def __init__(self, n_writers: int = 50, samples_per_writer: int = 100,
                 size: int = 28, seed: int = 0, num_classes: int = 62,
                 noise: float = 0.7, split: str = "train"):
        rng_proto = spawn_rng(seed, "femnist", "prototypes")
        templates = _make_prototypes(rng_proto, num_classes, 1, size, 2)
        xs, ys, writers = [], [], []
        for wid in range(n_writers):
            rng_w = spawn_rng(seed, "femnist", "writer", wid, split)
            n = samples_per_writer
            # Writers use a skewed subset of classes (LEAF writers don't
            # produce all 62 characters equally).
            class_pref = rng_w.dirichlet(np.full(num_classes, 0.3))
            y = rng_w.choice(num_classes, size=n, p=class_pref)
            p = rng_w.integers(0, 2, size=n)
            x = templates[y, p].copy()
            # writer style: global intensity scale + bias + fixed slant shift
            scale = 0.7 + 0.6 * rng_w.random()
            bias = 0.4 * rng_w.normal()
            dy, dx = rng_w.integers(-2, 3, size=2)
            x = scale * np.roll(x, (int(dy), int(dx)), axis=(2, 3)) + bias
            x += rng_w.normal(0.0, noise, size=x.shape).astype(np.float32)
            xs.append(x)
            ys.append(y)
            writers.append(np.full(n, wid))
        x = np.concatenate(xs).astype(np.float32)
        y = np.concatenate(ys)
        mu, sd = x.mean(), x.std() + 1e-6
        super().__init__((x - mu) / sd, y)
        self.writer_ids = np.concatenate(writers)
        self.n_writers = n_writers
        self.size = size
        self.seed = seed


def train_val_split(dataset: ArrayDataset, val_fraction: float = 0.2,
                    seed: int = 0) -> tuple[ArrayDataset, ArrayDataset]:
    """Shuffled train/validation split (per-client local split in the FL runs)."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    rng = spawn_rng(seed, "train_val_split")
    order = rng.permutation(len(dataset))
    n_val = max(1, int(round(len(dataset) * val_fraction)))
    return dataset.subset(order[n_val:]), dataset.subset(order[:n_val])
