"""Minimal deterministic mini-batch loader."""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import spawn_rng


class DataLoader:
    """Iterate (x_batch, y_batch) numpy pairs over an :class:`ArrayDataset`.

    Shuffling is reseeded per epoch from a private stream, so two loaders
    with the same (seed, dataset) produce identical batch sequences —
    required for exactly reproducible FL rounds.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int = 32,
                 shuffle: bool = True, seed: int = 0, drop_last: bool = False):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        if self.shuffle:
            rng = spawn_rng(self._seed, "loader", self._epoch)
            order = rng.permutation(n)
        else:
            order = np.arange(n)
        self._epoch += 1
        bs = self.batch_size
        stop = n - (n % bs) if self.drop_last else n
        for lo in range(0, stop, bs):
            idx = order[lo:lo + bs]
            yield self.dataset.x[idx], self.dataset.y[idx]
