"""A minimal in-memory algorithm for protocol-level tests and benches.

The async runtime, executors, and codec paths are *protocols*: their
correctness properties (determinism, buffer invariants, dedup, ledger
accounting) are independent of what the clients actually train.
:class:`StubAvg` strips the training to a seeded perturbation of a small
dense vector, so a full simulated run costs microseconds — cheap enough
for property-based testing (hundreds of schedule interleavings per
second) and for benchmarking pure event-loop overhead without neural-net
noise.

The stub honours the full hook contract: updates are ``{"state", "n",
"train_loss", "steps"}`` dicts (so the base class's weighted-aggregation
default applies), every draw goes through the seeded RNG tree keyed by
``(round, client)`` (so results are schedule-order independent), and
aggregation reads the *current* global state (so commit order matters —
exactly what the invariant tests need to observe).
"""

from __future__ import annotations

import numpy as np

from repro.fl.base import FederatedAlgorithm
from repro.fl.local import weighted_average_states
from repro.utils.rng import spawn_rng


class DictModel:
    """The smallest thing that quacks like a model: one named array."""

    def __init__(self, dim: int = 64, seed: int = 0):
        rng = np.random.default_rng(seed)
        self._state = {"w": rng.standard_normal(dim).astype(np.float32)}

    def state_dict(self) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._state.items()}

    def load_state_dict(self, state: dict) -> None:
        self._state = {k: np.array(v) for k, v in state.items()}


class StubClient:
    """Client-shaped record: an id and the persistent-state dict."""

    def __init__(self, client_id: int):
        self.client_id = client_id
        self.local_state: dict = {}

    def close(self) -> None:
        """Match the real client's lifecycle hook (nothing to release)."""

    def evaluate(self, model) -> tuple[float, float]:
        """No data, no accuracy — lets the sync loop's eval pass run."""
        return 0.0, 0.0


class StubAvg(FederatedAlgorithm):
    """FedAvg over :class:`DictModel`: seeded noise instead of SGD."""

    name = "stubavg"

    def download_payload(self, client) -> dict[str, np.ndarray]:
        return self.global_model.state_dict()

    def local_update(self, client, round_idx: int) -> dict:
        rng = spawn_rng(self.seed, "stub", round_idx, client.client_id)
        state = {k: v + 0.01 * rng.standard_normal(v.shape).astype(v.dtype)
                 for k, v in self.global_model.state_dict().items()}
        return {"state": state, "n": 1 + client.client_id,
                "train_loss": float(rng.random()),
                "steps": self.epochs_for(client, round_idx)}

    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        return update["state"]

    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        self.global_model.load_state_dict(weighted_average_states(
            [u["state"] for u in updates], [u["n"] for u in updates]))

    def make_fold(self, spill, weighted: bool = False):
        """O(model) streaming mean (bitwise-equal to :meth:`aggregate`)."""
        from repro.fl.scale.fold import DictMeanFold
        return DictMeanFold(self, spill, weighted=weighted)


def make_stub(n_clients: int = 8, dim: int = 64, seed: int = 0,
              **kwargs) -> StubAvg:
    """A ready-to-run :class:`StubAvg` with ``n_clients`` stub clients."""
    clients = [StubClient(cid) for cid in range(n_clients)]
    kwargs.setdefault("local_epochs", 1)
    return StubAvg(lambda: DictModel(dim=dim, seed=seed), clients,
                   seed=seed, **kwargs)
