"""Vectorized round execution: train the whole cohort as one batched model.

SPATL's round loop trains B identical-architecture models per round —
one per sampled client — and on a single core the serial executor pays
B× the Python/autodiff overhead for the same total FLOPs.  This module
stacks the cohort instead (DESIGN.md §14): client parameters become
leading-batch-dim arrays, client mini-batches fold into the sample axis,
and each training step runs through the batched kernels of
:mod:`repro.nn.cohort` — one graph, one backward, one batched SGD step
for the whole cohort.

**Lockstep step groups.**  Dirichlet partitions give clients unequal
shards, so per-step mini-batch row counts diverge (final partial
batches, exhausted shards).  Each global step therefore groups the still
-active clients by their current batch row count; every group gathers
its rows from the canonical ``(B, ...)`` stacks (a zero-copy install
when the group is the full cohort — the steady state), steps, and
scatters back.  Per-client batch *sequences* are untouched — the same
seeded loaders yield the same batches in the same order as serial
training — so client b's parameter trajectory is bitwise identical.

**Byte-identity and faults.**  The executor precomputes every client's
update with the cohort kernels, then replays the standard per-client
exchange (:meth:`FederatedAlgorithm._client_exchange`) in cohort order
with ``local_update`` substituted by a precomputed-lookup — ledger
bytes, fault draws, retries, crash rollbacks, and stats all go through
the unmodified protocol path, so clean *and* faulty runs match serial
byte-for-byte (asserted in ``tests/test_fl_vectorized.py``).  A
substituted retry returns the same update recomputation would produce —
local training is a pure function of ``(global state, client, round)``.

Anything outside the kernels' envelope — algorithms without the
``cohort_local_updates`` hook, gradient-norm clipping, channel masks,
unsupported layer types — falls back to the wrapped serial executor.
One observable (non-numeric) difference: traced vectorized runs carry no
per-client ``train_local`` spans, because the cohort trains in one
batched pass.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro.fl.parallel import RoundExecutor, SerialExecutor
from repro.nn.cohort import (CohortUnsupported, cross_entropy_cohort,
                             sgd_step_cohort)
from repro.tensor import Tensor
from repro.utils.metrics import RunningAverage

__all__ = ["CohortTrainer", "VectorizedRoundExecutor", "CohortUnsupported",
           "cohort_local_updates"]


class CohortTrainer:
    """Batched local training for one algorithm's cohort.

    Owns a single cohort model (built once from ``algorithm.model_fn``)
    whose parametric layers dispatch to the batched kernels, plus the
    per-round canonical parameter/buffer/velocity stacks.  ``run``
    returns ``{client_id: update}`` with updates bitwise equal to the
    algorithm's serial ``local_update`` outputs.
    """

    def __init__(self, algorithm: Any):
        from repro.nn.conv import Conv2d
        from repro.nn.dropout import Dropout
        from repro.nn.linear import Linear
        from repro.nn.norm import _BatchNorm

        self.algorithm = algorithm
        self.model = algorithm.model_fn()
        self._mods: list[Any] = []
        for name, mod in self.model.named_modules():
            if isinstance(mod, Dropout) and mod.p > 0:
                raise CohortUnsupported(
                    f"dropout p={mod.p} at {name!r} draws per-sample RNG "
                    "the folded batch cannot replicate")
            if mod._parameters and not isinstance(
                    mod, (Conv2d, Linear, _BatchNorm)):
                raise CohortUnsupported(
                    f"no batched kernel for parametric module "
                    f"{type(mod).__name__} at {name!r}")
            if mod._buffers and not isinstance(mod, _BatchNorm):
                raise CohortUnsupported(
                    f"no batched kernel for buffered module "
                    f"{type(mod).__name__} at {name!r}")
            if isinstance(mod, (Conv2d, Linear, _BatchNorm)):
                self._mods.append(mod)
        self._params = dict(self.model.named_parameters())
        self._buffer_owners = self.model._buffer_owners()

    def _check_round(self) -> None:
        """Per-round gates on state that may change between rounds."""
        if self.algorithm.max_grad_norm is not None:
            raise CohortUnsupported(
                "gradient-norm clipping couples a client's parameters "
                "through a global norm; cohort steps do not replicate it")
        for mod in self.model.modules():
            if getattr(mod, "_channel_masks", None):
                raise CohortUnsupported("channel masks installed")

    def _install(self, params: dict[str, np.ndarray],
                 buffers: dict[str, np.ndarray], cohort: int) -> None:
        """Point the cohort model at a group's stacks."""
        for name, p in self._params.items():
            p.data = params[name]
            p.grad = None
        for name, (owner, local) in self._buffer_owners.items():
            owner.set_buffer(local, buffers[name])
        for mod in self._mods:
            mod._cohort_n = cohort

    def run(self, clients: Sequence[Any], round_idx: int) -> dict[int, dict]:
        """Train every client's local update in batched lockstep."""
        self._check_round()
        algo = self.algorithm
        b = len(clients)
        gstate = algo.global_model.state_dict()
        param_names = set(self._params)
        canonical = {}
        for name, arr in gstate.items():
            stacked = np.ascontiguousarray(
                np.broadcast_to(arr, (b,) + np.asarray(arr).shape))
            if not stacked.flags.writeable:
                # b == 1: the broadcast view is already contiguous, so
                # ascontiguousarray returned it (read-only) uncopied.
                stacked = stacked.copy()
            canonical[name] = stacked
        velocity = ({name: np.zeros((b,) + gstate[name].shape,
                                    dtype=gstate[name].dtype)
                     for name in param_names} if algo.momentum else {})

        # Per-client batch streams: fresh seeded loaders per epoch, lazily
        # chained — exactly the sequence train_local iterates.
        def batches(client, epochs):
            for epoch in range(epochs):
                yield from client.train_loader(round_idx * 1000 + epoch)

        iters = [batches(c, algo.epochs_for(c, round_idx)) for c in clients]
        pending = [next(it, None) for it in iters]
        loss_avgs = [RunningAverage() for _ in clients]
        steps = [0] * b
        self.model.train()

        while True:
            active = [i for i in range(b) if pending[i] is not None]
            if not active:
                break
            groups: dict[int, list[int]] = {}
            for i in active:
                groups.setdefault(len(pending[i][1]), []).append(i)
            for nrows, idx in groups.items():
                k = len(idx)
                full = k == b
                if full:
                    gparams = {n: canonical[n] for n in param_names}
                    gbuffers = {n: canonical[n] for n in self._buffer_owners}
                    gvel = velocity
                else:
                    sel = np.asarray(idx)
                    gparams = {n: canonical[n][sel] for n in param_names}
                    gbuffers = {n: canonical[n][sel]
                                for n in self._buffer_owners}
                    gvel = {n: velocity[n][sel] for n in velocity}
                self._install(gparams, gbuffers, k)
                if k == 1:
                    xb, yb = pending[idx[0]]
                else:
                    xb = np.concatenate([pending[i][0] for i in idx], axis=0)
                    yb = np.concatenate([pending[i][1] for i in idx], axis=0)
                logits = self.model(Tensor(xb))
                loss = cross_entropy_cohort(logits, yb, k)
                self.model.zero_grad()
                loss.backward(np.ones(k, dtype=np.float32))
                sgd_step_cohort(self._params.items(), algo.lr, algo.momentum,
                                algo.weight_decay, gvel)
                # Buffers were *replaced* by the batched batch-norm
                # (set_buffer swaps array objects); params stepped in
                # place.  Fold both back into the canonical stacks.
                if full:
                    for name, (owner, local) in self._buffer_owners.items():
                        canonical[name] = owner._buffers[local]
                else:
                    for name in param_names:
                        canonical[name][sel] = self._params[name].data
                    for name, (owner, local) in self._buffer_owners.items():
                        canonical[name][sel] = owner._buffers[local]
                    for name in velocity:
                        velocity[name][sel] = gvel[name]
                for j, i in enumerate(idx):
                    loss_avgs[i].update(float(loss.data[j]), nrows)
                    steps[i] += 1
            for i in active:
                pending[i] = next(iters[i], None)

        updates: dict[int, dict] = {}
        for j, client in enumerate(clients):
            state = OrderedDict(
                (name, np.array(canonical[name][j])) for name in gstate)
            updates[client.client_id] = {
                "state": state, "n": client.num_train,
                "train_loss": loss_avgs[j].value, "steps": steps[j]}
        return updates


# One trainer per algorithm, never pickled (worker replicas rebuild their
# own on demand) and dropped with the algorithm.
_TRAINERS: "weakref.WeakKeyDictionary[Any, CohortTrainer]" = \
    weakref.WeakKeyDictionary()


def cohort_local_updates(algorithm: Any, clients: Sequence[Any],
                         round_idx: int) -> dict[int, dict]:
    """Batched ``local_update`` for every client; raises
    :class:`CohortUnsupported` when the model/config falls outside the
    batched kernels' envelope (callers fall back to serial)."""
    trainer = _TRAINERS.get(algorithm)
    if trainer is None:
        trainer = _TRAINERS[algorithm] = CohortTrainer(algorithm)
    return trainer.run(clients, round_idx)


class VectorizedRoundExecutor(RoundExecutor):
    """Single-process executor that batches the cohort's local training.

    ``collect`` precomputes every selected client's update through the
    cohort kernels, then replays the standard serial exchange loop with
    ``local_update`` answering from the precomputed table — identical
    protocol side effects (ledger, fault draws, retries, stats, metrics)
    in identical cohort order, so results are byte-identical to
    :class:`~repro.fl.parallel.SerialExecutor` clean and under faults.

    Algorithms without a ``cohort_local_updates`` hook, and any round the
    hook rejects (:class:`CohortUnsupported`), run on ``fallback``
    (serial by default).  See DESIGN.md §14 for when this executor wins:
    small models on few cores, where per-client Python overhead — not
    GEMM throughput — dominates round wall-time.
    """

    #: Wave-size hint for the population-scale runner: stacking this many
    #: virtual clients per wave keeps the batched GEMMs wide while
    #: bounding stacked-parameter memory (ScaleRunner reads this when no
    #: explicit ``wave`` is given).
    preferred_wave = 16

    def __init__(self, fallback: RoundExecutor | None = None):
        self.fallback = fallback if fallback is not None else SerialExecutor()
        self._serial = SerialExecutor()

    def collect(self, algorithm, selected, round_idx, salt, stats):
        """Batched precompute + serial-order protocol replay."""
        hook = getattr(algorithm, "cohort_local_updates", None)
        if hook is None or not selected:
            return self.fallback.collect(algorithm, selected, round_idx,
                                         salt, stats)
        try:
            precomputed = hook(list(selected), round_idx)
        except CohortUnsupported:
            return self.fallback.collect(algorithm, selected, round_idx,
                                         salt, stats)

        def _precomputed_update(client, _round_idx):
            # Retries re-enter here; returning the cached update matches
            # serial retraining because local training is deterministic
            # in (global state, client, round).
            return precomputed[client.client_id]

        algorithm.local_update = _precomputed_update
        try:
            return self._serial.collect(algorithm, selected, round_idx, salt,
                                        stats)
        finally:
            del algorithm.local_update

    def close(self) -> None:
        self.fallback.close()
