"""Local-training helpers shared by all FL algorithms.

:func:`train_local` is the one SGD loop every algorithm's
``local_update`` delegates to; algorithm-specific behaviour plugs in via
hooks rather than subclassed loops — ``correction_hook`` for
SCAFFOLD/SPATL control variates (Eq. 9), ``extra_loss`` for FedProx's
proximal term, ``param_filter`` to restrict training to the encoder.
:func:`weighted_average_states` is the FedAvg server-side reduction.
Both are pure with respect to server state, which is what makes them
safe to run inside worker processes (DESIGN.md §9).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fl.client import Client
from repro.obs.trace import get_tracer
from repro.optim import SGD
from repro.tensor import Tensor, functional as F
from repro.utils.metrics import RunningAverage


def train_local(model, client: Client, round_idx: int, epochs: int, lr: float,
                momentum: float = 0.9, weight_decay: float = 0.0,
                max_grad_norm: float | None = None,
                correction_hook: Callable | None = None,
                param_filter: Callable[[str], bool] | None = None,
                extra_loss: Callable | None = None,
                compiler=None) -> tuple[float, int]:
    """Run ``epochs`` of SGD on the client's shard.

    Parameters
    ----------
    correction_hook:
        Per-step gradient correction ``(name, grad) -> grad`` — SCAFFOLD /
        SPATL control variates plug in here (Eq. 9).
    param_filter:
        Restrict the optimizer to parameters whose dotted name passes the
        predicate (used for predictor-only transfer updates, Eq. 4).
    extra_loss:
        Additional differentiable loss term given the model, added to the
        cross-entropy (FedProx's proximal term plugs in here).
    compiler:
        Optional :class:`~repro.tensor.compile.StepCompiler`.  When given,
        each step is attempted as a compiled replay (byte-identical to the
        eager step); steps the compiler cannot replay — unsupported graph
        shapes, active channel masks, an ``extra_loss`` — run eagerly.

    Returns ``(mean train loss, number of optimizer steps, optimizer)`` —
    the optimizer is returned so algorithms that communicate local optimizer
    state (FedNova's momentum variant) can read its buffers.
    """
    named = [(n, p) for n, p in model.named_parameters()
             if param_filter is None or param_filter(n)]
    opt = SGD(named, lr=lr, momentum=momentum, weight_decay=weight_decay,
              max_grad_norm=max_grad_norm)
    if correction_hook is not None:
        opt.add_correction_hook(correction_hook)
    loss_avg = RunningAverage()
    steps = 0
    model.train()
    with get_tracer().span("train_local", round=round_idx,
                           client=client.client_id, epochs=epochs) as span:
        for epoch in range(epochs):
            for xb, yb in client.train_loader(round_idx * 1000 + epoch):
                loss_val = None
                if compiler is not None:
                    loss_val = compiler.try_step(model, xb, yb,
                                                 extra_loss=extra_loss)
                if loss_val is None:
                    logits = model(Tensor(xb))
                    loss = F.cross_entropy(logits, yb)
                    if extra_loss is not None:
                        loss = loss + extra_loss(model)
                    model.zero_grad()
                    loss.backward()
                    loss_val = loss.item()
                opt.step()
                loss_avg.update(loss_val, len(yb))
                steps += 1
        span.set(steps=steps, train_loss=loss_avg.value)
    return loss_avg.value, steps, opt


def weighted_average_states(states: list[dict[str, np.ndarray]],
                            weights: list[float]) -> dict[str, np.ndarray]:
    """Weighted mean of aligned state dicts (FedAvg aggregation).

    Integer-typed entries (e.g. ``num_batches_tracked``) take the first
    client's value rather than a meaningless average.
    """
    if len(states) != len(weights) or not states:
        raise ValueError("states/weights mismatch or empty")
    w = np.asarray(weights, dtype=np.float64)
    w = w / w.sum()
    out: dict[str, np.ndarray] = {}
    for key in states[0]:
        first = np.asarray(states[0][key])
        if first.dtype.kind in "iu":
            out[key] = first.copy()
            continue
        acc = np.zeros_like(first, dtype=np.float64)
        for wi, state in zip(w, states):
            acc += wi * np.asarray(state[key], dtype=np.float64)
        out[key] = acc.astype(first.dtype)
    return out
