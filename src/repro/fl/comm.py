"""Communication codec and byte-exact cost accounting.

The paper's communication-cost results (Tables I & II, Eq. 13:
``cost = sum over rounds of per-client payloads``) require counting what
actually crosses the network.  This module provides:

- a real binary wire format (``serialize_state``/``deserialize_state``) so
  tests can prove payloads round-trip losslessly;
- ``payload_nbytes`` — dense state-dict payload size, exactly the size of
  the serialised form;
- ``sparse_payload_nbytes`` — salient-selection payload size: selected
  values + int32 filter indices + per-entry headers (the paper's
  "parameter and corresponding parameter index ... negligible burdens");
- :class:`CommLedger` — per-round, per-direction ledger the server loop
  writes every transfer into.

Wire format (little-endian): ``[u32 n_entries]`` then per entry
``[u16 name_len][name utf-8][u8 dtype_code][u8 ndim][u32 dims...]
[raw array bytes]``.
"""

from __future__ import annotations

import struct
from collections import defaultdict

import numpy as np

_DTYPES = [np.dtype(np.float32), np.dtype(np.float64), np.dtype(np.int32),
           np.dtype(np.int64), np.dtype(np.uint8), np.dtype(bool),
           np.dtype(np.float16)]
_DTYPE_CODE = {dt: i for i, dt in enumerate(_DTYPES)}


def serialize_state(state: dict[str, np.ndarray]) -> bytes:
    """Encode a flat state dict to bytes (deterministic, key-ordered)."""
    parts = [struct.pack("<I", len(state))]
    for name in state:
        arr = np.ascontiguousarray(state[name])
        if arr.dtype not in _DTYPE_CODE:
            raise TypeError(f"unsupported dtype {arr.dtype} for {name!r}")
        raw_name = name.encode("utf-8")
        parts.append(struct.pack("<H", len(raw_name)))
        parts.append(raw_name)
        parts.append(struct.pack("<BB", _DTYPE_CODE[arr.dtype], arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}I", *arr.shape))
        parts.append(arr.tobytes())
    return b"".join(parts)


def deserialize_state(payload: bytes) -> dict[str, np.ndarray]:
    """Decode bytes produced by :func:`serialize_state`."""
    out: dict[str, np.ndarray] = {}
    off = 0
    (n_entries,) = struct.unpack_from("<I", payload, off)
    off += 4
    for _ in range(n_entries):
        (name_len,) = struct.unpack_from("<H", payload, off)
        off += 2
        name = payload[off:off + name_len].decode("utf-8")
        off += name_len
        code, ndim = struct.unpack_from("<BB", payload, off)
        off += 2
        shape = struct.unpack_from(f"<{ndim}I", payload, off)
        off += 4 * ndim
        dtype = _DTYPES[code]
        nbytes = dtype.itemsize * int(np.prod(shape)) if ndim else dtype.itemsize
        arr = np.frombuffer(payload[off:off + nbytes], dtype=dtype).reshape(shape)
        off += nbytes
        out[name] = arr.copy()
    return out


def _entry_overhead(name: str, ndim: int) -> int:
    return 2 + len(name.encode("utf-8")) + 2 + 4 * ndim


def payload_nbytes(state: dict[str, np.ndarray]) -> int:
    """Exact wire size of a dense state dict (== len(serialize_state(state)))."""
    total = 4
    for name, arr in state.items():
        arr = np.asarray(arr)
        total += _entry_overhead(name, arr.ndim) + arr.nbytes
    return total


def sparse_payload_nbytes(selected: dict[str, tuple[np.ndarray, np.ndarray]]) -> int:
    """Wire size of a salient payload: {layer: (int filter indices, values)}.

    Indices travel as int32 (one per selected filter); values as their own
    dtype.  Each layer contributes two entries (``<name>.idx``,
    ``<name>.val``).
    """
    total = 4
    for name, (indices, values) in selected.items():
        indices = np.asarray(indices)
        values = np.asarray(values)
        total += _entry_overhead(name + ".idx", 1) + 4 * indices.size
        total += _entry_overhead(name + ".val", values.ndim) + values.nbytes
    return total


def quantize_state(state: dict[str, np.ndarray],
                   dtype=np.float16) -> dict[str, np.ndarray]:
    """Cast floating tensors to a narrower wire dtype (lossy compression).

    Halving payloads with fp16 is the simplest communication-compression
    knob on top of salient selection; integer tensors (indices, counters)
    pass through untouched.
    """
    out = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        out[name] = arr.astype(dtype) if arr.dtype.kind == "f" else arr
    return out


def dequantize_state(state: dict[str, np.ndarray],
                     dtype=np.float32) -> dict[str, np.ndarray]:
    """Widen floating tensors back to the compute dtype after receipt."""
    out = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        out[name] = arr.astype(dtype) if arr.dtype.kind == "f" else arr
    return out


class CommLedger:
    """Accumulates communicated bytes by round, client, and direction."""

    def __init__(self):
        self.uplink: dict[int, dict[int, int]] = defaultdict(dict)
        self.downlink: dict[int, dict[int, int]] = defaultdict(dict)

    def record_up(self, round_idx: int, client_id: int, nbytes: int) -> None:
        self.uplink[round_idx][client_id] = \
            self.uplink[round_idx].get(client_id, 0) + int(nbytes)

    def record_down(self, round_idx: int, client_id: int, nbytes: int) -> None:
        self.downlink[round_idx][client_id] = \
            self.downlink[round_idx].get(client_id, 0) + int(nbytes)

    def round_bytes(self, round_idx: int) -> int:
        up = sum(self.uplink.get(round_idx, {}).values())
        down = sum(self.downlink.get(round_idx, {}).values())
        return up + down

    def total_bytes(self, up_to_round: int | None = None) -> int:
        rounds = set(self.uplink) | set(self.downlink)
        if up_to_round is not None:
            rounds = {r for r in rounds if r <= up_to_round}
        return sum(self.round_bytes(r) for r in rounds)

    def total_gb(self, up_to_round: int | None = None) -> float:
        return self.total_bytes(up_to_round) / 2 ** 30

    def per_round_per_client_mb(self) -> float:
        """Mean per-client per-round payload (Tables' "Cost Round/Client")."""
        total, n = 0, 0
        for r in set(self.uplink) | set(self.downlink):
            clients = set(self.uplink.get(r, {})) | set(self.downlink.get(r, {}))
            for c in clients:
                total += self.uplink.get(r, {}).get(c, 0)
                total += self.downlink.get(r, {}).get(c, 0)
                n += 1
        return (total / n) / 2 ** 20 if n else 0.0
