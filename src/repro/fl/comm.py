"""Communication codec and byte-exact cost accounting.

The paper's communication-cost results (Tables I & II, Eq. 13:
``cost = sum over rounds of per-client payloads``) require counting what
actually crosses the network.  This module provides:

- a real binary wire format (``serialize_state``/``deserialize_state``) so
  tests can prove payloads round-trip losslessly;
- ``payload_nbytes`` — dense state-dict payload size, exactly the size of
  the serialised form;
- ``sparse_payload_nbytes`` — salient-selection payload size: selected
  values + int32 filter indices + per-entry headers (the paper's
  "parameter and corresponding parameter index ... negligible burdens");
- :class:`CommLedger` — per-round, per-direction ledger the server loop
  writes every transfer into;
- ``encode_update``/``decode_update`` — *worker payload framing*: a
  lossless pytree codec layered on the wire format, so the parallel
  execution engine (:mod:`repro.fl.parallel`) can ship arbitrary
  algorithm update objects (nested dicts/tuples of arrays and scalars)
  between processes through the very same serializer the simulated
  network uses.

Wire format (little-endian): ``[u32 n_entries]`` then per entry
``[u16 name_len][name utf-8][u8 dtype_code][u8 ndim][u32 dims...]
[raw array bytes]``.  With ``checksums=True`` each entry is followed by
``[u32 crc32]`` over the whole entry record (header + raw bytes), so
bit-flips anywhere in the entry — including its name and shape — are
*detected* at deserialisation instead of silently skewing aggregation.
The checksummed variant is what :class:`repro.fl.faults.FaultyTransport`
puts on the (simulated) wire; the plain variant stays byte-identical to
the original format so fault-free accounting is unchanged.

The codec core lives in :mod:`repro.fl.wire` (DESIGN.md §11): a
zero-copy single-buffer writer, a read-only-view decode mode, and the
per-round :class:`~repro.fl.wire.BroadcastCache`.  This module keeps the
public entry points — :func:`serialize_state` / :func:`deserialize_state`
wrap the wire core in the traced codec spans the observability layer
cross-checks against the ledger — plus the sizing helpers, the ledger,
and the pytree update framing.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any

import numpy as np

from repro.fl.wire import (PayloadError, payload_nbytes,
                           sparse_payload_nbytes)
from repro.fl import wire
from repro.obs.trace import get_tracer

__all__ = ["PayloadError", "serialize_state", "deserialize_state",
           "payload_nbytes", "sparse_payload_nbytes", "quantize_state",
           "dequantize_state", "encode_update", "decode_update",
           "CommLedger"]


def serialize_state(state: dict[str, np.ndarray],
                    checksums: bool = False) -> bytes:
    """Encode a flat state dict to bytes (deterministic, key-ordered).

    With ``checksums=True`` every entry record is followed by its CRC32,
    making corruption detectable by :func:`deserialize_state`.

    The encoding runs through the zero-copy single-buffer writer in
    :mod:`repro.fl.wire` — the wire size is computed up front and every
    header and array is written in place, so the payload is produced
    with one data pass instead of per-entry joins.  Entry names above
    65535 UTF-8 bytes or dimensions at or above ``2**32`` don't fit the
    headers and raise :class:`PayloadError` naming the entry.

    When tracing is enabled, the whole encode is wrapped in a
    ``serialize`` span whose ``bytes`` attribute is the exact wire size —
    the same number the :class:`CommLedger` records — so traces and the
    communication tables line up byte-for-byte.
    """
    with get_tracer().span("serialize", checksums=checksums) as span:
        blob = wire.serialize(state, checksums=checksums)
        span.set(bytes=len(blob), entries=len(state))
    return blob


def deserialize_state(payload: bytes, checksums: bool = False,
                      copy: bool = True) -> dict[str, np.ndarray]:
    """Decode bytes produced by :func:`serialize_state`.

    Every offset is validated against ``len(payload)`` before it is read,
    so truncated or bit-flipped payloads raise :class:`PayloadError`
    naming the entry and offset instead of a bare ``struct.error`` or a
    silent mis-slice.  With ``checksums=True`` each entry's CRC32 is
    verified as well.  Duplicate entry names are a structural fault too:
    a payload that names the same entry twice would silently let the last
    occurrence win, so it is rejected with :class:`PayloadError`.

    ``copy=False`` skips the per-entry copies and returns **read-only**
    views over ``payload`` (see :func:`repro.fl.wire.deserialize`) — the
    fast path for decode-then-read consumers such as aggregation.

    Like :func:`serialize_state`, the decode is wrapped in a traced
    ``deserialize`` span carrying the payload's byte count.
    """
    with get_tracer().span("deserialize", checksums=checksums,
                           bytes=memoryview(payload).nbytes) as span:
        out = wire.deserialize(payload, checksums=checksums, copy=copy)
        span.set(entries=len(out), zero_copy=not copy)
    return out


def quantize_state(state: dict[str, np.ndarray],
                   dtype=np.float16) -> dict[str, np.ndarray]:
    """Cast floating tensors to a narrower wire dtype (lossy compression).

    Halving payloads with fp16 is the simplest communication-compression
    knob on top of salient selection.  Only floats *wider* than the
    target are narrowed; non-float tensors (indices, bool masks, BN step
    counters like ``num_batches_tracked``) and already-narrow floats pass
    through bit-exactly, so a quantize → dequantize round trip is the
    identity on every entry the cast doesn't touch.

    For stochastic sub-byte quantization (int8/int4 with error
    feedback), see :mod:`repro.fl.quant` — this helper is the simple
    dtype-cast knob, not the low-bit codec.
    """
    target = np.dtype(dtype)
    if target.kind != "f":
        raise TypeError(f"quantize_state target must be a float dtype, "
                        f"got {target}")
    out = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        narrow = arr.dtype.kind == "f" and arr.dtype.itemsize > target.itemsize
        out[name] = arr.astype(target) if narrow else arr
    return out


def dequantize_state(state: dict[str, np.ndarray],
                     dtype=np.float32) -> dict[str, np.ndarray]:
    """Widen narrow floating tensors back to the compute dtype.

    The inverse knob of :func:`quantize_state`: floats *narrower* than
    the target are widened; everything else — non-floats, and floats at
    or above the target width (so a float64 entry is never silently
    downcast to float32 on receipt) — passes through bit-exactly.
    """
    target = np.dtype(dtype)
    if target.kind != "f":
        raise TypeError(f"dequantize_state target must be a float dtype, "
                        f"got {target}")
    out = {}
    for name, arr in state.items():
        arr = np.asarray(arr)
        widen = arr.dtype.kind == "f" and arr.dtype.itemsize < target.itemsize
        out[name] = arr.astype(target) if widen else arr
    return out


# --------------------------------------------------------------------------
# Worker payload framing: a pytree codec on top of the wire format.
#
# Algorithm update objects are nested Python structures (dicts of arrays,
# tuples of (indices, values), scalar step counts...).  The parallel
# execution engine needs to move them between processes *losslessly* and
# through the same serializer the simulated network uses, so traces and
# accounting exercise one code path.  The framing flattens the structure
# into (a) positional array entries and (b) a JSON manifest describing the
# tree, then hands both to :func:`serialize_state`.

_MANIFEST_KEY = "__pytree__"


def _flatten_node(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Recursively convert ``node`` into a JSON-able manifest, moving every
    array (and numpy scalar) into ``arrays`` under a positional key."""
    if isinstance(node, np.ndarray):
        key = f"t{len(arrays)}"
        arrays[key] = node
        return {"k": "arr", "id": key}
    if isinstance(node, np.generic):          # numpy scalar: keep exact dtype
        key = f"t{len(arrays)}"
        arrays[key] = np.asarray(node)
        return {"k": "np", "id": key}
    if isinstance(node, dict):
        items = []
        for name, value in node.items():
            if not isinstance(name, str):
                raise TypeError(
                    f"update dict keys must be str, got {type(name).__name__}")
            items.append([name, _flatten_node(value, arrays)])
        return {"k": "dict", "items": items}
    if isinstance(node, tuple):
        return {"k": "tuple", "items": [_flatten_node(v, arrays) for v in node]}
    if isinstance(node, list):
        return {"k": "list", "items": [_flatten_node(v, arrays) for v in node]}
    if node is None or isinstance(node, (bool, int, float, str)):
        return {"k": "val", "v": node}
    raise TypeError(f"cannot frame update node of type {type(node).__name__}")


def _lookup_array(manifest: Any, arrays: dict[str, np.ndarray]) -> np.ndarray:
    """The array a manifest node points at; missing ids are a payload
    fault (inconsistent framing), not a caller bug, so raise
    :class:`PayloadError` instead of leaking ``KeyError``."""
    key = manifest.get("id")
    if key is None or key not in arrays:
        raise PayloadError(
            f"pytree manifest references missing array id {key!r}",
            entry=key if isinstance(key, str) else None)
    return arrays[key]


def _unflatten_node(manifest: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_flatten_node`."""
    kind = manifest["k"]
    if kind == "arr":
        return _lookup_array(manifest, arrays)
    if kind == "np":
        return _lookup_array(manifest, arrays)[()]
    if kind == "dict":
        return {name: _unflatten_node(v, arrays)
                for name, v in manifest["items"]}
    if kind == "tuple":
        return tuple(_unflatten_node(v, arrays) for v in manifest["items"])
    if kind == "list":
        return [_unflatten_node(v, arrays) for v in manifest["items"]]
    if kind == "val":
        return manifest["v"]
    raise PayloadError(f"unknown pytree node kind {kind!r}")


def encode_update(update: Any, checksums: bool = False) -> bytes:
    """Frame an arbitrary algorithm update object as wire bytes.

    Supports nested dicts (str keys), tuples, lists, numpy arrays and
    scalars, and the JSON-able primitives (``int``/``float``/``bool``/
    ``str``/``None``).  The encoding is lossless: python floats round-trip
    via JSON's shortest-repr, arrays via their raw bytes — so a decoded
    update aggregates byte-identically to the original.
    """
    arrays: dict[str, np.ndarray] = {}
    manifest = _flatten_node(update, arrays)
    raw = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
    arrays[_MANIFEST_KEY] = np.frombuffer(raw, dtype=np.uint8)
    return serialize_state(arrays, checksums=checksums)


def decode_update(payload: bytes, checksums: bool = False,
                  copy: bool = True) -> Any:
    """Decode bytes produced by :func:`encode_update`.

    A manifest that references an array id absent from the payload is an
    inconsistent framing and raises :class:`PayloadError` (never a bare
    ``KeyError``).  ``copy=False`` decodes the arrays as read-only views
    over ``payload`` — safe for aggregate-then-discard consumers like the
    parallel engine's commit path, which only reads the update.
    """
    arrays = deserialize_state(payload, checksums=checksums, copy=copy)
    if _MANIFEST_KEY not in arrays:
        raise PayloadError("framed update lacks its pytree manifest",
                           entry=_MANIFEST_KEY)
    raw = bytes(arrays.pop(_MANIFEST_KEY))
    return _unflatten_node(json.loads(raw.decode("utf-8")), arrays)


class CommLedger:
    """Accumulates communicated bytes by round, client, and direction."""

    def __init__(self):
        self.uplink: dict[int, dict[int, int]] = defaultdict(dict)
        self.downlink: dict[int, dict[int, int]] = defaultdict(dict)

    def record_up(self, round_idx: int, client_id: int, nbytes: int) -> None:
        self.uplink[round_idx][client_id] = \
            self.uplink[round_idx].get(client_id, 0) + int(nbytes)

    def record_down(self, round_idx: int, client_id: int, nbytes: int) -> None:
        self.downlink[round_idx][client_id] = \
            self.downlink[round_idx].get(client_id, 0) + int(nbytes)

    def merge(self, other: "CommLedger") -> None:
        """Fold another ledger's traffic into this one.

        Used by the parallel execution engine: each worker charges a fresh
        per-task ledger, and the parent merges them in deterministic client
        order so parallel accounting equals serial accounting exactly.
        """
        for round_idx, per_client in other.uplink.items():
            for client_id, nbytes in per_client.items():
                self.record_up(round_idx, client_id, nbytes)
        for round_idx, per_client in other.downlink.items():
            for client_id, nbytes in per_client.items():
                self.record_down(round_idx, client_id, nbytes)

    def round_bytes(self, round_idx: int) -> int:
        up = sum(self.uplink.get(round_idx, {}).values())
        down = sum(self.downlink.get(round_idx, {}).values())
        return up + down

    def total_bytes(self, up_to_round: int | None = None) -> int:
        rounds = set(self.uplink) | set(self.downlink)
        if up_to_round is not None:
            rounds = {r for r in rounds if r <= up_to_round}
        return sum(self.round_bytes(r) for r in rounds)

    def total_gb(self, up_to_round: int | None = None) -> float:
        return self.total_bytes(up_to_round) / 2 ** 30

    def per_round_per_client_mb(self) -> float:
        """Mean per-client per-round payload (Tables' "Cost Round/Client")."""
        total, n = 0, 0
        for r in set(self.uplink) | set(self.downlink):
            clients = set(self.uplink.get(r, {})) | set(self.downlink.get(r, {}))
            for c in clients:
                total += self.uplink.get(r, {}).get(c, 0)
                total += self.downlink.get(r, {}).get(c, 0)
                n += 1
        return (total / n) / 2 ** 20 if n else 0.0
