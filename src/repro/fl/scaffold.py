"""SCAFFOLD (Karimireddy et al., ICML 2020) — full-model control variates.

Server keeps a control variate ``c``; each client keeps ``c_i``.  Every
local SGD step is corrected by ``+ (c - c_i)`` (drift removal), and after
``K`` local steps with learning rate ``eta_l`` the client refreshes its
variate with option II of the paper:

    c_i+ = c_i - c + (x - y_i) / (K * eta_l)

The server then updates model and variate from the deltas:

    x <- x + eta_g * mean(y_i - x)
    c <- c + (|S| / N) * mean(c_i+ - c_i)

Wire cost: (model + c) down, (delta + delta_c) up — 2x FedAvg, matching
the paper's Table I.

Faithfulness note (SPATL §V-B, finding 6 of the Non-IID benchmark): with
many clients and partial participation SCAFFOLD is prone to gradient
explosion / divergence.  This implementation deliberately applies *no*
stabilisation beyond the optional global ``max_grad_norm`` inherited from
the base class, so the reproduction exhibits the same failure mode the
paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.fl.base import FederatedAlgorithm
from repro.fl.client import Client
from repro.fl.local import train_local


class Scaffold(FederatedAlgorithm):
    """Stochastic controlled averaging; see module docstring for equations."""
    name = "scaffold"

    def __init__(self, *args, server_lr: float = 1.0, **kwargs):
        # SCAFFOLD's algorithm specifies *vanilla* local SGD; its variate
        # refresh (x - y_i)/(K*eta) is only consistent without momentum.
        # Callers may still force momentum explicitly to reproduce the
        # momentum-driven explosions the Non-IID benchmark reports.
        kwargs.setdefault("momentum", 0.0)
        super().__init__(*args, **kwargs)
        self._work = self.model_fn()
        self.server_lr = server_lr
        self.c_global: dict[str, np.ndarray] = {
            n: np.zeros_like(p.data) for n, p in self.global_model.named_parameters()}

    def _client_variate(self, client: Client) -> dict[str, np.ndarray]:
        if "c_i" not in client.local_state:
            client.local_state["c_i"] = {n: np.zeros_like(v)
                                         for n, v in self.c_global.items()}
        return client.local_state["c_i"]

    def worker_sync_state(self) -> dict[str, np.ndarray]:
        """Global model plus the server control variate (``cv.*``)."""
        state = super().worker_sync_state()
        state.update({f"cv.{n}": v for n, v in self.c_global.items()})
        return state

    def load_worker_sync_state(self, state: dict[str, np.ndarray]) -> None:
        """Install model + server control variate on a worker replica."""
        super().load_worker_sync_state(state)
        for key, value in state.items():
            if key.startswith("cv."):
                self.c_global[key[len("cv."):]] = value

    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        payload = self.global_model.state_dict()
        payload.update({f"c.{n}": v for n, v in self.c_global.items()})
        return payload

    def local_update(self, client: Client, round_idx: int) -> dict:
        self._work.load_state_dict(self.global_model.state_dict())
        c_i = self._client_variate(client)
        c = self.c_global
        before = {n: p.data.copy() for n, p in self._work.named_parameters()}

        def control(name: str, grad: np.ndarray) -> np.ndarray:
            return grad + c[name] - c_i[name]

        loss, steps, _ = train_local(self._work, client, round_idx,
                                     epochs=self.epochs_for(client, round_idx), lr=self.lr,
                                     momentum=self.momentum,
                                     weight_decay=self.weight_decay,
                                     max_grad_norm=self.max_grad_norm,
                                     correction_hook=control,
                                     compiler=self.step_compiler)
        k_eta = max(steps, 1) * self.lr
        delta_w = {n: p.data - before[n] for n, p in self._work.named_parameters()}
        c_i_new = {n: c_i[n] - c[n] - delta_w[n] / k_eta for n in c_i}
        delta_c = {n: c_i_new[n] - c_i[n] for n in c_i}
        client.local_state["c_i"] = c_i_new
        buffers = {n: b.copy() for n, b in self._work.named_buffers()}
        return {"delta_w": delta_w, "delta_c": delta_c, "buffers": buffers,
                "n": client.num_train, "train_loss": loss, "steps": steps}

    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        payload = {f"dw.{n}": v for n, v in update["delta_w"].items()}
        payload.update({f"dc.{n}": v for n, v in update["delta_c"].items()})
        payload.update(update["buffers"])
        return payload

    def apply_upload_payload(self, update: dict,
                             payload: dict[str, np.ndarray]) -> None:
        update["delta_w"] = {n: payload[f"dw.{n}"] for n in update["delta_w"]}
        update["delta_c"] = {n: payload[f"dc.{n}"] for n in update["delta_c"]}
        update["buffers"] = {n: payload[n] for n in update["buffers"]}

    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        # Survivor correctness under dropout: the model step averages over
        # the n_sel *surviving* deltas, while the variate step keeps the
        # paper's (|S|/N) damping with |S| = survivors — i.e. the c update
        # sums survivor variate deltas and normalises by N (= n_all), so a
        # dropped client contributes nothing rather than a stale term.
        if not updates:
            raise ValueError("aggregate() needs >= 1 surviving update; "
                             "skipped rounds must not reach aggregation")
        n_sel = len(updates)
        n_all = len(self.clients)
        params = dict(self.global_model.named_parameters())
        for name, param in params.items():
            mean_dw = sum(u["delta_w"][name] for u in updates) / n_sel
            param.data += (self.server_lr * mean_dw).astype(param.data.dtype)
            mean_dc = sum(u["delta_c"][name] for u in updates) / n_sel
            self.c_global[name] = (self.c_global[name]
                                   + (n_sel / n_all) * mean_dc).astype(param.data.dtype)
        owners = self.global_model._buffer_owners()
        for name, (owner, local) in owners.items():
            first = np.asarray(updates[0]["buffers"][name])
            if first.dtype.kind in "iu":
                avg = first
            else:
                avg = sum(u["buffers"][name] for u in updates) / n_sel
            owner.set_buffer(local, np.asarray(avg, dtype=first.dtype))
