"""FedAvg (McMahan et al., AISTATS 2017) — the cost benchmark of Table I.

The simplest baseline the paper compares against, and the 1x reference
for every speed-up column: each sampled client downloads the full global
model, trains locally, uploads the full model back, and the server takes
the example-weighted average.  It carries no server-side optimizer state
and no per-client state, so its hooks double as the minimal example of
the :class:`~repro.fl.base.FederatedAlgorithm` contract.
"""

from __future__ import annotations

import numpy as np

from repro.fl.base import FederatedAlgorithm
from repro.fl.client import Client
from repro.fl.local import train_local, weighted_average_states


class FedAvg(FederatedAlgorithm):
    """Weighted full-model averaging.

    Per-round, per-client traffic: one full model down, one full model up —
    the 1x cost reference every other method's speed-up column is measured
    against.
    """

    name = "fedavg"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._work = self.model_fn()

    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        return self.global_model.state_dict()

    def local_update(self, client: Client, round_idx: int) -> dict:
        self._work.load_state_dict(self.global_model.state_dict())
        loss, steps, _ = train_local(self._work, client, round_idx,
                                  epochs=self.epochs_for(client, round_idx), lr=self.lr,
                                  momentum=self.momentum,
                                  weight_decay=self.weight_decay,
                                  max_grad_norm=self.max_grad_norm,
                                  compiler=self.step_compiler)
        return {"state": self._work.state_dict(), "n": client.num_train,
                "train_loss": loss, "steps": steps}

    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        return update["state"]

    def apply_upload_payload(self, update: dict,
                             payload: dict[str, np.ndarray]) -> None:
        update["state"] = {k: payload[k] for k in update["state"]}

    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        # Under fault tolerance only *surviving* clients reach this point;
        # weights renormalise over survivors, which is exactly FedAvg under
        # partial participation.  An empty round is the server loop's job
        # to skip — aggregating nothing is a bug upstream.
        if not updates:
            raise ValueError("aggregate() needs >= 1 surviving update; "
                             "skipped rounds must not reach aggregation")
        avg = weighted_average_states([u["state"] for u in updates],
                                      [u["n"] for u in updates])
        self.global_model.load_state_dict(avg)

    def cohort_local_updates(self, clients: list[Client],
                             round_idx: int) -> dict[int, dict]:
        """Batched local updates for the vectorized executor (DESIGN.md §14).

        Bitwise-equal to per-client :meth:`local_update` calls; raises
        :class:`~repro.nn.cohort.CohortUnsupported` (callers fall back to
        serial) when the model or config needs kernels the cohort path
        does not have.
        """
        from repro.fl.vectorized import cohort_local_updates
        from repro.nn.cohort import CohortUnsupported
        if type(self).local_update is not FedAvg.local_update:
            # A subclass customised local training (e.g. FedProx's
            # proximal correction); the batched path would silently skip
            # that, so hand the round back to the fallback executor.
            raise CohortUnsupported(
                f"{type(self).__name__} overrides local_update")
        return cohort_local_updates(self, clients, round_idx)

    def make_fold(self, spill, weighted: bool = False):
        """O(model) streaming mean (bitwise-equal to :meth:`aggregate`)."""
        from repro.fl.scale.fold import DictMeanFold
        return DictMeanFold(self, spill, weighted=weighted)
