"""Fast transport layer: zero-copy wire codec and broadcast caching.

SPATL's headline results are communication-cost reductions (Tables I &
II, Eq. 13), which makes the wire path a first-class subsystem of this
reproduction — and one that must cost CPU like a codec, not like the
model.  This module is the hot-path core behind :mod:`repro.fl.comm`
(DESIGN.md §11):

- **zero-copy writer** — :func:`payload_nbytes` computes the exact wire
  size up front, :func:`serialize_into` writes header and array bytes
  straight into one preallocated buffer with ``struct.pack_into`` and
  ``memoryview`` slice assignment (no per-entry ``b"".join`` copies);
  :func:`serialize` wraps it over a fresh buffer, while
  :func:`serialize_scratch` writes into a workspace-arena buffer
  (:mod:`repro.tensor.workspace`) for encode-then-discard paths;
- **zero-copy reader** — :func:`deserialize` with ``copy=False``
  returns *read-only* ``np.frombuffer`` views over the payload instead
  of per-entry copies, for decode-then-aggregate and validate-only
  paths (the views keep the payload alive via the buffer protocol);
- :class:`BroadcastCache` — per-round memoisation of the server's
  client-invariant downlink encoding, keyed by a server-side round
  token with a CRC32 content fingerprint backstop, so the identical
  global state is framed once per round instead of once per client.
  The :class:`~repro.fl.comm.CommLedger` still charges every client the
  full downlink bytes — caching the *encoding* never changes the
  *accounting* (the ledger-invariance rule, DESIGN.md §11);
- :func:`codec_validate` — one traced serialize → validating-decode
  pass through arena scratch, emitting the codec spans whose byte
  totals the observability layer cross-checks against the ledger.

Wire format (little-endian): ``[u32 n_entries]`` then per entry
``[u16 name_len][name utf-8][u8 dtype_code][u8 ndim][u32 dims...]
[raw array bytes]``, each entry optionally followed by ``[u32 crc32]``
over the whole entry record.  The format is byte-identical to the
original join-based codec; only the way the bytes are produced changed.
Entry names above 65535 UTF-8 bytes and dimensions at or above ``2**32``
cannot be represented in the headers and raise :class:`PayloadError`
naming the entry instead of surfacing a raw ``struct.error``.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.tensor import workspace


class PayloadError(ValueError):
    """A wire payload failed structural validation or checksum.

    ``entry`` names the state-dict entry being decoded when the fault was
    found (``None`` while reading the global header) and ``offset`` is the
    byte offset at which decoding could not proceed.
    """

    def __init__(self, message: str, entry: str | None = None,
                 offset: int | None = None):
        detail = message
        if entry is not None:
            detail += f" (entry {entry!r})"
        if offset is not None:
            detail += f" (offset {offset})"
        super().__init__(detail)
        self.entry = entry
        self.offset = offset


_DTYPES = [np.dtype(np.float32), np.dtype(np.float64), np.dtype(np.int32),
           np.dtype(np.int64), np.dtype(np.uint8), np.dtype(bool),
           np.dtype(np.float16)]
_DTYPE_CODE = {dt: i for i, dt in enumerate(_DTYPES)}

# Header field capacities; exceeding them is a caller error surfaced as a
# typed PayloadError naming the entry, never a raw struct.error.
_MAX_NAME_BYTES = 0xFFFF          # u16 name length
_MAX_DIM = 0xFFFF_FFFF            # u32 per-dimension extent
_MAX_ENTRIES = 0xFFFF_FFFF        # u32 entry count


def _check_name_and_shape(name: str, shape: tuple[int, ...]) -> bytes:
    """Validate header-field capacities; return the encoded name."""
    raw_name = name.encode("utf-8")
    if len(raw_name) > _MAX_NAME_BYTES:
        raise PayloadError(
            f"entry name is {len(raw_name)} UTF-8 bytes, wire limit is "
            f"{_MAX_NAME_BYTES}", entry=name)
    for dim in shape:
        if dim > _MAX_DIM:
            raise PayloadError(
                f"dimension {dim} exceeds the u32 wire limit {_MAX_DIM}",
                entry=name)
    return raw_name


def _wire_array(name: str, value: Any) -> np.ndarray:
    """Coerce one state entry to the exact array that goes on the wire."""
    arr = np.ascontiguousarray(value)
    if np.ndim(value) == 0:
        # ascontiguousarray promotes 0-d to 1-d; undo it so the wire shape
        # (and payload_nbytes) match the caller's array exactly
        arr = arr.reshape(())
    if arr.dtype not in _DTYPE_CODE:
        raise TypeError(f"unsupported dtype {arr.dtype} for {name!r}")
    return arr


def payload_nbytes(state: dict[str, np.ndarray],
                   checksums: bool = False) -> int:
    """Exact wire size of a dense state dict (== len(serialize(state))).

    Validates the same header-capacity limits as the writer, so a state
    that sizes cleanly is guaranteed to serialize cleanly.
    """
    if len(state) > _MAX_ENTRIES:
        raise PayloadError(f"too many entries ({len(state)}) for the u32 "
                           "count header")
    total = 4
    per_entry = 4 if checksums else 0
    for name, value in state.items():
        arr = np.asarray(value)
        raw_name = _check_name_and_shape(name, arr.shape)
        total += 2 + len(raw_name) + 2 + 4 * arr.ndim + arr.nbytes + per_entry
    return total


def sparse_payload_nbytes(selected: dict[str, tuple[np.ndarray, np.ndarray]]) -> int:
    """Wire size of a salient payload: {layer: (int filter indices, values)}.

    Indices travel as int32 (one per selected filter); values as their own
    dtype.  Each layer contributes two entries (``<name>.idx``,
    ``<name>.val``) and the total equals ``payload_nbytes`` of the
    equivalent ``.idx``/``.val`` state dict exactly.
    """
    total = 4
    for name, (indices, values) in selected.items():
        indices = np.asarray(indices)
        values = np.asarray(values)
        _check_name_and_shape(name + ".idx", (indices.size,))
        _check_name_and_shape(name + ".val", values.shape)
        total += 2 + len((name + ".idx").encode("utf-8")) + 2 + 4 \
            + 4 * indices.size
        total += 2 + len((name + ".val").encode("utf-8")) + 2 \
            + 4 * values.ndim + values.nbytes
    return total


def serialize_into(state: dict[str, np.ndarray], out: Any,
                   checksums: bool = False) -> int:
    """Serialize ``state`` into the writable buffer ``out``; return the
    byte count written.

    ``out`` must expose a writable C-contiguous buffer (``bytearray``,
    ``memoryview``, uint8 ``ndarray``) of at least
    :func:`payload_nbytes` bytes.  Entries are written in dict order —
    headers via ``struct.pack_into``, array data via ``memoryview`` slice
    assignment directly from each array's own buffer — so the only data
    copy is the single write into ``out``.
    """
    mv = memoryview(out)
    if mv.format != "B":
        mv = mv.cast("B")
    if len(state) > _MAX_ENTRIES:
        raise PayloadError(f"too many entries ({len(state)}) for the u32 "
                           "count header")
    struct.pack_into("<I", mv, 0, len(state))
    off = 4
    for name, value in state.items():
        arr = _wire_array(name, value)
        raw_name = _check_name_and_shape(name, arr.shape)
        start = off
        struct.pack_into("<H", mv, off, len(raw_name))
        off += 2
        mv[off:off + len(raw_name)] = raw_name
        off += len(raw_name)
        struct.pack_into("<BB", mv, off, _DTYPE_CODE[arr.dtype], arr.ndim)
        off += 2
        if arr.ndim:
            struct.pack_into(f"<{arr.ndim}I", mv, off, *arr.shape)
            off += 4 * arr.ndim
        if arr.nbytes:
            mv[off:off + arr.nbytes] = memoryview(arr).cast("B")
            off += arr.nbytes
        if checksums:
            struct.pack_into("<I", mv, off, zlib.crc32(mv[start:off]))
            off += 4
    return off


def serialize(state: dict[str, np.ndarray], checksums: bool = False) -> bytes:
    """Encode a flat state dict to bytes through the single-buffer writer.

    Producing an *immutable* blob costs one fresh allocation plus one
    copy no matter what, so the write is staged through a persistent
    arena buffer (warm pages, no zero-fill) and copied out once —
    large-state encodes are then bound by that single copy.  Paths that
    can consume a transient view should use :func:`serialize_scratch`
    and skip the copy entirely.
    """
    n = payload_nbytes(state, checksums=checksums)
    cap = 1 << max(6, (n - 1).bit_length())
    slot = workspace.slot_for(_SCRATCH_OWNER)
    # distinct tag from serialize_scratch: materialising a blob must not
    # invalidate a scratch view a caller is still consuming
    buf = slot.buffer("wire.encode", (cap,), np.uint8)
    serialize_into(state, buf, checksums=checksums)
    return bytes(memoryview(buf)[:n])


# Arena owner for module-level scratch serialization; kept alive by the
# module so its WorkspaceSlot (and buffers) persist for the process.
_SCRATCH_OWNER = type("WireScratch", (), {})()


def serialize_scratch(state: dict[str, np.ndarray], checksums: bool = False,
                      owner: Any = None) -> memoryview:
    """Serialize into a workspace-arena buffer; return a sized memoryview.

    The returned view is **transient scratch**: it stays valid only until
    the owner's next ``serialize_scratch`` call of a similar size, so it
    is for encode-then-consume-then-discard paths (traced codec
    validation, benchmarks) — never for blobs that outlive the call.
    Buffer capacities are bucketed to powers of two so payloads whose
    sizes drift round-to-round (salient selections) reuse a bounded set
    of arena buffers instead of growing one per distinct size.
    """
    n = payload_nbytes(state, checksums=checksums)
    cap = 1 << max(6, (n - 1).bit_length())
    slot = workspace.slot_for(owner if owner is not None else _SCRATCH_OWNER)
    buf = slot.buffer("wire.scratch", (cap,), np.uint8)
    serialize_into(state, buf, checksums=checksums)
    return memoryview(buf)[:n]


def deserialize(payload: Any, checksums: bool = False,
                copy: bool = True) -> dict[str, np.ndarray]:
    """Decode bytes produced by :func:`serialize` (any buffer object).

    Every offset is validated against the payload length before it is
    read, so truncated or bit-flipped payloads raise
    :class:`PayloadError` naming the entry and offset instead of a bare
    ``struct.error`` or a silent mis-slice; duplicate entry names are
    rejected too.  With ``checksums=True`` each entry's CRC32 is
    verified.

    ``copy=False`` returns **read-only** ``np.frombuffer`` views over
    ``payload`` instead of fresh arrays: zero data copies, with the
    payload kept alive by the views' buffer references.  Use it for
    decode-then-read paths (validation, aggregation inputs); callers
    that need to mutate the result must use ``copy=True`` (the default,
    byte-identical to the original decoder).
    """
    mv = memoryview(payload)
    if mv.format != "B":
        mv = mv.cast("B")
    total = mv.nbytes
    out: dict[str, np.ndarray] = {}
    off = 0

    def need(n: int, what: str, entry: str | None) -> None:
        if off + n > total:
            raise PayloadError(
                f"truncated payload: need {n} byte(s) for {what}, "
                f"have {total - off}", entry=entry, offset=off)

    need(4, "entry count", None)
    (n_entries,) = struct.unpack_from("<I", mv, off)
    off += 4
    for i in range(n_entries):
        entry_label = f"#{i}"
        record_start = off
        need(2, "name length", entry_label)
        (name_len,) = struct.unpack_from("<H", mv, off)
        off += 2
        need(name_len, "entry name", entry_label)
        try:
            name = bytes(mv[off:off + name_len]).decode("utf-8")
        except UnicodeDecodeError as err:
            raise PayloadError(f"undecodable entry name: {err}",
                               entry=entry_label, offset=off) from err
        off += name_len
        if name in out:
            raise PayloadError("duplicate entry name", entry=name,
                               offset=record_start)
        need(2, "dtype/ndim header", name)
        code, ndim = struct.unpack_from("<BB", mv, off)
        off += 2
        if code >= len(_DTYPES):
            raise PayloadError(f"unknown dtype code {code}", entry=name,
                               offset=off - 2)
        if ndim > 32:  # numpy's own dimensionality ceiling
            raise PayloadError(f"implausible ndim {ndim}", entry=name,
                               offset=off - 1)
        need(4 * ndim, "shape", name)
        shape = struct.unpack_from(f"<{ndim}I", mv, off)
        off += 4 * ndim
        dtype = _DTYPES[code]
        n_items = 1
        for dim in shape:
            n_items *= int(dim)
        nbytes = dtype.itemsize * n_items
        need(nbytes, f"array data ({nbytes} bytes)", name)
        arr = np.frombuffer(mv, dtype=dtype, count=n_items,
                            offset=off).reshape(shape)
        off += nbytes
        if checksums:
            need(4, "entry checksum", name)
            (stored,) = struct.unpack_from("<I", mv, off)
            computed = zlib.crc32(mv[record_start:off])
            off += 4
            if stored != computed:
                raise PayloadError(
                    f"checksum mismatch: stored {stored:#010x}, "
                    f"computed {computed:#010x}", entry=name,
                    offset=off - 4)
        if copy:
            arr = arr.copy()
        elif arr.flags.writeable:
            arr.flags.writeable = False
        out[name] = arr
    if off != total:
        raise PayloadError(
            f"{total - off} trailing byte(s) after final entry",
            offset=off)
    return out


def state_fingerprint(state: dict[str, np.ndarray]) -> int:
    """CRC32 content fingerprint over names, headers, and raw bytes.

    One allocation-free C pass per array — cheap relative to encoding,
    and exactly what :class:`BroadcastCache` needs to recognise that a
    state's content did not change across round tokens (e.g. after a
    skipped round)."""
    crc = 0
    for name, value in state.items():
        arr = _wire_array(name, value)
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(repr((arr.dtype.str, arr.shape)).encode(), crc)
        if arr.nbytes:
            crc = zlib.crc32(memoryview(arr).cast("B"), crc)
    return crc


@dataclass
class _CacheEntry:
    token: Any
    fingerprint: int
    blob: bytes
    entries: int


class BroadcastCache:
    """Per-round memoisation of client-invariant broadcast encodings.

    The server's downlink payload (and the parallel engine's worker sync
    state) is identical for every client of a round, yet the original
    pipeline re-framed it once per client.  ``encode`` caches the wire
    blob per ``channel`` under a server-supplied round ``token`` — the
    server bumps its token exactly when global state may have mutated
    (once per ``run_round``) — with a CRC32 content fingerprint as the
    cross-token key, so byte-identical states are recognised even after
    the token moves (content keying).

    Contract: a channel must carry **client-invariant** content within
    one token (true for every built-in algorithm's downlink and sync
    states — they depend only on server state).  Per-client payloads
    (uploads) must not go through the cache.

    Ledger invariance: the cache changes who pays the CPU for framing,
    never who pays the bytes — callers keep charging every client the
    full blob length.  When tracing is on, every ``encode`` emits a
    ``serialize`` span carrying the full byte count plus a ``cached``
    attribute, so traced codec byte totals still equal the ledger's.

    Instances are picklable but ship cold (the cached blob is dropped),
    so worker replicas re-encode once rather than inflating task pickles.

    The entry map is LRU-bounded at ``max_entries`` channels (blobs are
    full model encodings — an unbounded channel set would hoard O(model)
    each, at odds with the population-scale O(model) memory budget;
    DESIGN.md §13).  Evictions land in ``evictions`` and the
    ``wire.broadcast_evictions`` metrics counter.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple[str, bool, Any], _CacheEntry] = \
            OrderedDict()
        self.hits = 0           # token matched: no hash, no encode
        self.content_hits = 0   # token moved but fingerprint matched
        self.misses = 0         # fresh encode
        self.evictions = 0      # LRU-evicted channel entries

    def __getstate__(self):
        return {"max_entries": self.max_entries}  # replicas start cold

    def __setstate__(self, state):
        # Accept the legacy cold marker (pre-bounded pickles stored True).
        if isinstance(state, dict):
            self.__init__(max_entries=state.get("max_entries", 8))
        else:
            self.__init__()

    def encode(self, state: dict[str, np.ndarray], *, token: Any,
               channel: str = "down", checksums: bool = False,
               variant: Any = None) -> bytes:
        """The wire blob for ``state``, encoded at most once per content.

        ``variant`` is an optional hashable encoding-configuration
        identity (e.g. :attr:`repro.fl.quant.QuantConfig.key`) that is
        part of the cache key alongside the channel: two configs never
        share an entry, so changing quantization knobs mid-run can at
        worst miss — it can never serve a blob framed under the old
        config, even when token and entry count happen to line up.
        """
        key = (channel, checksums, variant)
        entry = self._entries.get(key)
        cached = True
        if entry is not None:
            self._entries.move_to_end(key)
        if entry is not None and entry.token == token \
                and entry.entries == len(state):
            self.hits += 1
            blob = entry.blob
        else:
            fingerprint = state_fingerprint(state)
            if entry is not None and entry.fingerprint == fingerprint:
                self.content_hits += 1
                entry.token = token
                blob = entry.blob
            else:
                self.misses += 1
                cached = False
                blob = serialize(state, checksums=checksums)
                self._entries[key] = _CacheEntry(token=token,
                                                 fingerprint=fingerprint,
                                                 blob=blob,
                                                 entries=len(state))
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    get_registry().counter(
                        "wire.broadcast_evictions").inc()
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("serialize", checksums=checksums) as span:
                span.set(bytes=len(blob), entries=len(state), cached=cached)
        return blob


def codec_validate(state: dict[str, np.ndarray], checksums: bool = False,
                   owner: Any = None) -> int:
    """One traced pass through the codec; returns the wire byte count.

    Serializes into arena scratch and runs the validating zero-copy
    decoder, discarding the result: traced runs get ``serialize`` /
    ``deserialize`` spans whose byte totals equal the ledger's (the
    DESIGN.md §8 cross-check) at memcpy cost instead of
    allocate-and-copy cost.
    """
    tracer = get_tracer()
    with tracer.span("serialize", checksums=checksums) as span:
        blob = serialize_scratch(state, checksums=checksums, owner=owner)
        span.set(bytes=len(blob), entries=len(state), scratch=True)
    with tracer.span("deserialize", checksums=checksums,
                     bytes=len(blob), zero_copy=True) as span:
        out = deserialize(blob, checksums=checksums, copy=False)
        span.set(entries=len(out))
    return len(blob)
