"""Top-k delta sparsification — the classical communication-compression
baseline (adaptive gradient sparsification line of work the paper cites,
Han et al. 2020).

Each client uploads only the ``k`` fraction of its model-delta coordinates
with the largest magnitude (plus their int32 indices); the server applies
the sparse deltas with FedAvg weighting.  Unlike SPATL, selection is at
*coordinate* granularity on deltas, carries no structural meaning (no
FLOPs reduction at inference), and has no gradient control — this is the
"merely send fewer bytes" comparator that isolates how much of SPATL's
win is structure vs. sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.fl.base import FederatedAlgorithm
from repro.fl.client import Client
from repro.fl.local import train_local


def topk_mask(delta: np.ndarray, fraction: float) -> np.ndarray:
    """Flat indices of the largest-|value| ``fraction`` of ``delta``."""
    flat = np.abs(delta).ravel()
    k = max(1, int(round(fraction * flat.size)))
    return np.sort(np.argpartition(flat, -k)[-k:]).astype(np.int64)


class FedTopK(FederatedAlgorithm):
    """FedAvg with top-k sparsified delta uploads.

    ``fraction`` is the kept share of coordinates per tensor.  Residuals
    (the dropped delta mass) are accumulated locally and added to the next
    round's delta — the standard error-feedback trick that keeps top-k
    convergent.
    """

    name = "fedtopk"

    def __init__(self, *args, fraction: float = 0.25, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self._work = self.model_fn()

    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        return self.global_model.state_dict()

    def local_update(self, client: Client, round_idx: int) -> dict:
        self._work.load_state_dict(self.global_model.state_dict())
        before = {n: p.data.copy() for n, p in self._work.named_parameters()}
        loss, steps, _ = train_local(self._work, client, round_idx,
                                     epochs=self.epochs_for(client, round_idx),
                                     lr=self.lr, momentum=self.momentum,
                                     weight_decay=self.weight_decay,
                                     max_grad_norm=self.max_grad_norm,
                                     compiler=self.step_compiler)
        residual = client.local_state.setdefault("residual", {})
        sparse: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for n, p in self._work.named_parameters():
            delta = (p.data - before[n]) + residual.get(n, 0.0)
            idx = topk_mask(delta, self.fraction)
            vals = delta.ravel()[idx].copy()
            # error feedback: remember what we did not send
            kept = np.zeros_like(delta).ravel()
            kept[idx] = vals
            residual[n] = delta - kept.reshape(delta.shape)
            sparse[n] = (idx.astype(np.int32), vals.astype(np.float32))
        buffers = {n: b.copy() for n, b in self._work.named_buffers()}
        return {"sparse": sparse, "buffers": buffers, "n": client.num_train,
                "train_loss": loss, "steps": steps}

    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        payload: dict[str, np.ndarray] = {}
        for n, (idx, vals) in update["sparse"].items():
            payload[f"{n}.idx"] = idx
            payload[f"{n}.val"] = vals
        payload.update(update["buffers"])
        return payload

    def apply_upload_payload(self, update: dict,
                             payload: dict[str, np.ndarray]) -> None:
        update["sparse"] = {n: (payload[f"{n}.idx"], payload[f"{n}.val"])
                            for n in update["sparse"]}
        update["buffers"] = {n: payload[n] for n in update["buffers"]}

    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        if not updates:
            raise ValueError("aggregate() needs >= 1 surviving update; "
                             "skipped rounds must not reach aggregation")
        weights = np.asarray([u["n"] for u in updates], dtype=np.float64)
        w = weights / weights.sum()
        params = dict(self.global_model.named_parameters())
        for name, param in params.items():
            flat = param.data.ravel()
            acc = np.zeros_like(flat, dtype=np.float64)
            for wi, u in zip(w, updates):
                idx, vals = u["sparse"][name]
                acc[np.asarray(idx, dtype=np.int64)] += wi * vals
            flat += acc.astype(flat.dtype)
        owners = self.global_model._buffer_owners()
        for name, (owner, local) in owners.items():
            first = np.asarray(updates[0]["buffers"][name])
            if first.dtype.kind in "iu":
                avg = first
            else:
                avg = sum(wi * u["buffers"][name]
                          for wi, u in zip(w, updates))
            owner.set_buffer(local, np.asarray(avg, dtype=first.dtype))
