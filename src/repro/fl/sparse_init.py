"""Sparse-at-init uplink masks: SalientGrads- and SSFL-style variants.

Two communication-reduction baselines from the PAPERS.md related work
that fix a *static* sparse communication pattern before training starts,
in contrast to :class:`~repro.fl.topk.FedTopK` (re-selects coordinates
every round, pays index bytes every round) and SPATL (re-selects salient
*structures* per round):

- :class:`SalientGrads` — pre-training gradient saliency: before round
  0, every client scores each parameter coordinate by ``|grad * weight|``
  (SNIP-style, one batch), the server averages the scores and keeps the
  top ``density`` fraction per tensor as the one global mask.  The
  one-time score upload and mask broadcast are charged to the ledger
  (round 0), so the bootstrap is not free bytes.
- :class:`SSFL` — unified subnetwork at initialization: the mask is the
  top ``density`` fraction by initial weight magnitude, derived from the
  seeded global init that server and clients already share — zero
  bootstrap communication.

After setup both run FedAvg locally but the uplink carries **only the
masked coordinates' values** — no indices, since both sides hold the
mask — plus dense buffers (BN statistics).  Aggregation folds the masked
coordinates with FedAvg weighting and leaves every unmasked global
coordinate at its initial value; local training of unmasked weights is
discarded at the next download (the subnetwork is the only globally
shared model).  Per-round uplink is therefore ``density * 4`` bytes per
parameter before quantization, and the payload is plain float values +
dense buffers — exactly the shape the low-bit codec (DESIGN.md §16)
compresses best, so ``--quant-bits 4`` stacks multiplicatively on top.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.comm import payload_nbytes
from repro.fl.fedavg import FedAvg
from repro.tensor import Tensor, functional as F


class SparseInitFL(FedAvg):
    """Shared masked-uplink machinery; subclasses supply the mask scores.

    ``density`` is the kept fraction of each parameter tensor.  The mask
    is built once in ``__init__`` (both server and clients are assumed to
    derive/receive it before round 0) and stays fixed for the whole run,
    so every round's wire format is index-free.
    """

    name = "sparseinit"

    def __init__(self, *args, density: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        self.density = density
        self.masks = self._build_masks()
        self._charge_mask_bootstrap()

    # ------------------------------------------------------------- masks
    def _mask_scores(self) -> dict[str, np.ndarray]:
        """Per-parameter saliency scores (higher = kept)."""
        raise NotImplementedError

    def _build_masks(self) -> dict[str, np.ndarray]:
        masks: dict[str, np.ndarray] = {}
        for name, scores in self._mask_scores().items():
            flat = np.abs(np.asarray(scores, dtype=np.float64)).ravel()
            k = max(1, int(round(self.density * flat.size)))
            keep = np.argpartition(flat, -k)[-k:] if k < flat.size \
                else np.arange(flat.size)
            masks[name] = np.sort(keep).astype(np.int64)
        return masks

    def _charge_mask_bootstrap(self) -> None:
        """Ledger charges for any setup communication (round 0)."""

    # ------------------------------------------------------------- wire
    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        payload: dict[str, np.ndarray] = {}
        state = update["state"]
        for name, idx in self.masks.items():
            payload[f"{name}.val"] = np.ascontiguousarray(
                np.asarray(state[name]).ravel()[idx], dtype=np.float32)
        for name, arr in state.items():
            if name not in self.masks:
                payload[name] = arr
        return payload

    def apply_upload_payload(self, update: dict,
                             payload: dict[str, np.ndarray]) -> None:
        state = update["state"]
        new_state: dict[str, np.ndarray] = {}
        for name, arr in state.items():
            arr = np.asarray(arr)
            if name in self.masks:
                flat = arr.copy().ravel()
                flat[self.masks[name]] = \
                    payload[f"{name}.val"].astype(arr.dtype)
                new_state[name] = flat.reshape(arr.shape)
            else:
                new_state[name] = payload[name]
        update["state"] = new_state

    # -------------------------------------------------------- aggregation
    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        if not updates:
            raise ValueError("aggregate() needs >= 1 surviving update; "
                             "skipped rounds must not reach aggregation")
        weights = np.asarray([u["n"] for u in updates], dtype=np.float64)
        w = weights / weights.sum()
        params = dict(self.global_model.named_parameters())
        for name, param in params.items():
            idx = self.masks[name]
            acc = np.zeros(idx.size, dtype=np.float64)
            for wi, u in zip(w, updates):
                acc += wi * np.asarray(u["state"][name]).ravel()[idx]
            flat = param.data.ravel()
            flat[idx] = acc.astype(param.data.dtype)
        owners = self.global_model._buffer_owners()
        for name, (owner, local) in owners.items():
            first = np.asarray(updates[0]["state"][name])
            if first.dtype.kind in "iu":
                avg = first
            else:
                avg = sum(wi * np.asarray(u["state"][name], dtype=np.float64)
                          for wi, u in zip(w, updates))
            owner.set_buffer(local, np.asarray(avg, dtype=first.dtype))

    def make_fold(self, spill, weighted: bool = False):
        """Masked aggregation doesn't decompose into FedAvg's dict mean
        (unmasked coordinates must stay at init), so fall back to the
        lossless spill-then-replay fold."""
        from repro.fl.scale.fold import SpillReplayFold
        return SpillReplayFold(self, spill, weighted=weighted)


class SSFL(SparseInitFL):
    """Unified subnetwork at initialization (SSFL-style).

    The mask is the top ``density`` fraction of each parameter tensor by
    initial weight magnitude.  Both sides derive it from the seeded
    global init they already share, so setup costs zero bytes.
    """

    name = "ssfl"

    def _mask_scores(self) -> dict[str, np.ndarray]:
        return {n: np.abs(p.data)
                for n, p in self.global_model.named_parameters()}


class SalientGrads(SparseInitFL):
    """Pre-training gradient-saliency mask (SalientGrads-style).

    Each client runs one forward/backward on its first local batch of the
    *initial* global model and scores coordinates by ``|grad * weight|``;
    the server averages client scores into the one global mask.  Score
    uploads (one full model-shaped float32 tensor set per client) and the
    mask broadcast (int32 indices per tensor) are charged to the ledger
    as round-0 traffic.
    """

    name = "salientgrads"

    def _client_saliency(self, client: Client) -> dict[str, np.ndarray]:
        self._work.load_state_dict(self.global_model.state_dict())
        self._work.train()
        xb, yb = next(iter(client.train_loader(0)))
        logits = self._work(Tensor(xb))
        loss = F.cross_entropy(logits, yb)
        self._work.zero_grad()
        loss.backward()
        return {n: np.abs((p.grad if p.grad is not None
                           else np.zeros_like(p.data)) * p.data)
                .astype(np.float32)
                for n, p in self._work.named_parameters()}

    def _mask_scores(self) -> dict[str, np.ndarray]:
        total: dict[str, np.ndarray] = {}
        for client in self.clients:
            scores = self._client_saliency(client)
            self.ledger.record_up(0, client.client_id,
                                  payload_nbytes(scores))
            for name, s in scores.items():
                acc = total.get(name)
                total[name] = s.astype(np.float64) if acc is None else acc + s
        return {n: s / len(self.clients) for n, s in total.items()}

    def _charge_mask_bootstrap(self) -> None:
        mask_payload = {f"{n}.idx": idx.astype(np.int32)
                        for n, idx in self.masks.items()}
        nbytes = payload_nbytes(mask_payload)
        for client in self.clients:
            self.ledger.record_down(0, client.client_id, nbytes)
