"""FedNova (Wang et al., NeurIPS 2020) — normalized averaging.

Heterogeneous clients take different numbers of local steps; naively
averaging their deltas biases the global objective toward fast clients.
FedNova normalises each client's cumulative progress by its effective step
count ``a_i`` before averaging, then rescales by the effective tau:

    d_i = (w_global - w_i) / a_i
    w_global <- w_global - tau_eff * sum_i p_i d_i,  tau_eff = sum_i p_i a_i

With SGD-momentum local updates, ``a_i = (tau_i - rho(1-rho^tau_i)/(1-rho))
/ (1-rho)`` (their Eq. for momentum-corrected step counts).

Wire cost: clients upload the normalized-progress vector *and* their local
momentum state (the reference implementation ships both so the server can
reason about optimizer drift), which is what makes FedNova ~2x FedAvg per
round in the paper's Table I — our codec reproduces that factor.
"""

from __future__ import annotations

import numpy as np

from repro.fl.base import FederatedAlgorithm
from repro.fl.client import Client
from repro.fl.local import train_local


class FedNova(FederatedAlgorithm):
    """Normalized-averaging FL; see module docstring for the update rule."""
    name = "fednova"

    def __init__(self, *args, gmf: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        self._work = self.model_fn()
        # Global (server-side) momentum — FedNova's "gmf" option.  The
        # buffer is broadcast so clients can warm-start consistently, which
        # together with the uplinked local momentum accounts for the ~2x
        # per-round cost the paper reports for FedNova.
        self.gmf = gmf
        self._server_momentum: dict[str, np.ndarray] = {
            n: np.zeros_like(p.data) for n, p in self.global_model.named_parameters()}

    def worker_sync_state(self) -> dict[str, np.ndarray]:
        """Global model plus the server momentum buffer (``sm.*``)."""
        state = super().worker_sync_state()
        state.update({f"sm.{n}": v for n, v in self._server_momentum.items()})
        return state

    def load_worker_sync_state(self, state: dict[str, np.ndarray]) -> None:
        """Install model + server momentum on a worker replica."""
        super().load_worker_sync_state(state)
        for key, value in state.items():
            if key.startswith("sm."):
                self._server_momentum[key[len("sm."):]] = value

    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        payload = self.global_model.state_dict()
        payload.update({f"server_momentum.{n}": v
                        for n, v in self._server_momentum.items()})
        return payload

    def _effective_steps(self, tau: int) -> float:
        rho = self.momentum
        if rho == 0.0 or tau == 0:
            return float(tau)
        return (tau - rho * (1 - rho ** tau) / (1 - rho)) / (1 - rho)

    def local_update(self, client: Client, round_idx: int) -> dict:
        self._work.load_state_dict(self.global_model.state_dict())
        before = {n: p.data.copy() for n, p in self._work.named_parameters()}
        loss, steps, opt = train_local(self._work, client, round_idx,
                                       epochs=self.epochs_for(client, round_idx), lr=self.lr,
                                       momentum=self.momentum,
                                       weight_decay=self.weight_decay,
                                       max_grad_norm=self.max_grad_norm,
                                       compiler=self.step_compiler)
        a_i = max(self._effective_steps(steps), 1e-8)
        delta = {n: (before[n] - p.data) / a_i
                 for n, p in self._work.named_parameters()}
        # Final local momentum state is model-shaped and rides the uplink.
        momentum_state = {f"momentum.{n}": opt._velocity.get(n, np.zeros_like(before[n]))
                          for n in before}
        buffers = {n: b.copy() for n, b in self._work.named_buffers()}
        return {"delta": delta, "a_i": a_i, "n": client.num_train,
                "train_loss": loss, "steps": steps,
                "momentum_state": momentum_state, "buffers": buffers}

    def upload_payload(self, update: dict) -> dict[str, np.ndarray]:
        payload = dict(update["delta"])
        payload.update(update["momentum_state"])
        payload.update(update["buffers"])
        payload["a_i"] = np.asarray([update["a_i"]], dtype=np.float32)
        return payload

    def apply_upload_payload(self, update: dict,
                             payload: dict[str, np.ndarray]) -> None:
        update["delta"] = {n: payload[n] for n in update["delta"]}
        update["momentum_state"] = {k: payload[k]
                                    for k in update["momentum_state"]}
        update["buffers"] = {n: payload[n] for n in update["buffers"]}
        update["a_i"] = float(payload["a_i"][0])

    def aggregate(self, updates: list[dict], round_idx: int) -> None:
        # Survivor correctness under dropout: both the data weights p_i and
        # the effective tau (sum_i p_i a_i) are computed over *surviving*
        # clients only, so a dropped straggler cannot bias tau_eff with an
        # effective-step count it never delivered.
        if not updates:
            raise ValueError("aggregate() needs >= 1 surviving update; "
                             "skipped rounds must not reach aggregation")
        weights = np.asarray([u["n"] for u in updates], dtype=np.float64)
        p = weights / weights.sum()
        tau_eff = float(np.sum(p * [u["a_i"] for u in updates]))
        params = dict(self.global_model.named_parameters())
        for name, param in params.items():
            combined = np.zeros_like(param.data, dtype=np.float64)
            for pi, u in zip(p, updates):
                combined += pi * u["delta"][name]
            step = tau_eff * combined
            if self.gmf:
                buf = self._server_momentum[name]
                buf *= self.gmf
                buf += step.astype(buf.dtype)
                step = buf
            param.data -= np.asarray(step, dtype=param.data.dtype)
        # Buffers (BN statistics) are plain-averaged, as in FedAvg.
        buffer_names = [n for n, _ in self.global_model.named_buffers()]
        owners = self.global_model._buffer_owners()
        for name in buffer_names:
            first = updates[0]["buffers"][name]
            if np.asarray(first).dtype.kind in "iu":
                avg = first
            else:
                avg = sum(pi * u["buffers"][name] for pi, u in zip(p, updates))
            owner, local = owners[name]
            owner.set_buffer(local, np.asarray(avg, dtype=np.asarray(first).dtype))
