"""Server round loop shared by every FL algorithm (baselines and SPATL).

The loop follows the standard synchronous FL protocol of the paper's
Figure 1: sample clients → download global state → local updates → upload →
aggregate → evaluate.  Subclasses implement four hooks:

- ``download_payload(client)`` — what the server sends (for accounting and
  for the client's starting state);
- ``local_update(client, round_idx)`` — run local training, return an
  update object;
- ``upload_payload(update)`` — what the client sends back (accounting);
- ``aggregate(updates, round_idx)`` — fold uploads into the global state.

Evaluation reports the **average local top-1 accuracy across all clients**
(participating or not), matching §V-B: "we allocate each client a local
non-IID training dataset and a validation dataset to evaluate the top-1
accuracy ... among heterogeneous clients".

The per-client exchange is dispatched through a pluggable *round executor*
(see :mod:`repro.fl.parallel` and DESIGN.md §9): the default
:class:`~repro.fl.parallel.SerialExecutor` runs clients in-process exactly
as the original loop did, while ``ProcessPoolRoundExecutor`` fans them out
over worker processes and commits results in deterministic client order so
parallel runs stay seed- and byte-identical to serial ones.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.fl.client import Client
from repro.fl.comm import CommLedger, deserialize_state, payload_nbytes
from repro.fl.faults import FaultModel, FaultyTransport
from repro.fl.quant import QUANT_WIRE_KEY, QuantConfig, quantize_payload
from repro.fl.wire import BroadcastCache, codec_validate
from repro.fl.parallel import RoundExecutor, SerialExecutor
from repro.fl.resilience import (ClientCrashed, ClientFailure, FaultStats,
                                 RetryPolicy, TransferCorrupted)
from repro.models.split import SplitModel
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.utils.logging import ExperimentLog
from repro.utils.metrics import EarlyStopper
from repro.utils.rng import spawn_rng


def sample_clients(clients: Sequence[Client], sample_ratio: float, seed: int,
                   round_idx: int, salt: int = 0) -> list[Client]:
    """Uniformly sample ``ceil(ratio * n)`` distinct clients for a round.

    ``salt`` re-salts the draw when a quorum-failed round is re-sampled;
    ``salt=0`` reproduces the original (pre-fault-tolerance) stream
    exactly.
    """
    if not 0.0 < sample_ratio <= 1.0:
        raise ValueError("sample_ratio must be in (0, 1]")
    n = len(clients)
    k = max(1, int(np.ceil(sample_ratio * n)))
    if salt:
        rng = spawn_rng(seed, "sampling", round_idx, "resample", salt)
    else:
        rng = spawn_rng(seed, "sampling", round_idx)
    chosen = rng.choice(n, size=k, replace=False)
    return [clients[i] for i in sorted(chosen)]


@dataclass
class RoundResult:
    """Metrics of one communication round."""

    round_idx: int
    avg_train_loss: float
    avg_val_acc: float
    n_participants: int
    round_bytes: int
    # Fault-tolerance accounting (all zero on the fault-free path).
    n_dropped: int = 0
    n_retries: int = 0
    n_corrupt: int = 0
    n_resamples: int = 0
    committed: bool = True


class FederatedAlgorithm:
    """Base class; see module docstring for the hook contract."""

    name = "base"

    def __init__(self, model_fn: Callable[[], SplitModel], clients: Sequence[Client],
                 lr: float = 0.01, local_epochs: int | tuple[int, int] = 10,
                 sample_ratio: float = 1.0,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 max_grad_norm: float | None = None, seed: int = 0,
                 fault_model: FaultModel | None = None,
                 retry_policy: RetryPolicy | None = None,
                 min_clients: int = 1, max_round_resamples: int = 3,
                 executor: RoundExecutor | None = None,
                 compile_steps: bool = False,
                 quant: QuantConfig | None = None):
        self.model_fn = model_fn
        self.clients = list(clients)
        if not self.clients:
            raise ValueError("need at least one client")
        self.lr = lr
        # System heterogeneity: a (lo, hi) range makes each client draw its
        # own epoch count per round (slow devices do less work) — the
        # objective-inconsistency regime FedNova targets.  An int keeps the
        # paper's uniform "10 rounds locally".
        if isinstance(local_epochs, tuple):
            lo, hi = local_epochs
            if not 1 <= lo <= hi:
                raise ValueError(f"bad local_epochs range {local_epochs}")
        self.local_epochs = local_epochs
        self.sample_ratio = sample_ratio
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.seed = seed
        self.global_model: SplitModel = model_fn()
        self.ledger = CommLedger()
        self.rounds_completed = 0
        # Fault tolerance is strictly opt-in: without a fault model the
        # round loop takes the original (byte-identical) code path.
        if min_clients < 1:
            raise ValueError("min_clients must be >= 1")
        if max_round_resamples < 0:
            raise ValueError("max_round_resamples must be >= 0")
        self.fault_model = fault_model
        self.retry_policy = retry_policy or RetryPolicy()
        self.min_clients = min_clients
        self.max_round_resamples = max_round_resamples
        # Per-round broadcast-encoding cache (DESIGN.md §11): the downlink
        # and worker-sync states are client-invariant within a round, so
        # they are framed once under the round's generation token and the
        # cached blob is re-sent.  The ledger still charges every client
        # the full byte count — caching never changes accounting.
        self._broadcast = BroadcastCache()
        self._bcast_gen = 0
        # Low-bit uplink transport (DESIGN.md §16): with an active
        # :class:`~repro.fl.quant.QuantConfig`, each freshly trained
        # update is quantized exactly once — its wire encoding is stashed
        # on the update under ``QUANT_WIRE_KEY`` and its uplink tensors
        # are replaced by the dequantized values, so every byte-charging
        # site, retransmission, and fold sees one consistent payload.
        # ``quant=None`` (or bits=32) keeps the original dense path
        # byte-identical.
        self.quant = quant if quant is not None and quant.active else None
        self.transport = (FaultyTransport(fault_model, self.ledger,
                                          broadcast=self._broadcast)
                          if fault_model is not None else None)
        if self.transport is not None and self.quant is not None:
            self.transport.variant = self.quant.key
        self.fault_stats = FaultStats()  # cumulative over the whole run
        # Round execution engine (DESIGN.md §9).  SerialExecutor keeps the
        # original in-process loop; ProcessPoolRoundExecutor fans clients
        # out over worker processes with a deterministic ordered commit.
        self.executor: RoundExecutor = executor or SerialExecutor()
        # Trace-and-replay step executor (DESIGN.md §15): captures each
        # (model, batch-signature) training step once and replays it with
        # static memory planning.  Byte-identical to eager, so it composes
        # with every algorithm/executor/fault configuration; ``None`` keeps
        # the plain eager loop.
        if compile_steps:
            from repro.tensor.compile import StepCompiler
            self.step_compiler = StepCompiler()
        else:
            self.step_compiler = None

    def epochs_for(self, client: Client, round_idx: int) -> int:
        """Local epochs this client runs this round.

        Uniform when ``local_epochs`` is an int; drawn per (client, round)
        from the configured range when it is a tuple (system heterogeneity).
        """
        if isinstance(self.local_epochs, tuple):
            lo, hi = self.local_epochs
            rng = spawn_rng(self.seed, "epochs", round_idx, client.client_id)
            return int(rng.integers(lo, hi + 1))
        return int(self.local_epochs)

    # ------------------------------------------------------------ hooks
    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def local_update(self, client: Client, round_idx: int) -> Any:
        raise NotImplementedError

    def upload_payload(self, update: Any) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def apply_upload_payload(self, update: Any,
                             payload: dict[str, np.ndarray]) -> None:
        """Write a (decoded) uplink payload back into ``update`` in place.

        The inverse of :meth:`upload_payload`: given entries under the
        same names that hook emits, replace the update's transmitted
        tensors with them.  The quantized transport uses it to make
        aggregation fold exactly what the wire carried
        (dequantize-then-fold, DESIGN.md §16).  Values the uplink never
        carries (client-side bookkeeping like SPATL's ``"before"``) are
        untouched by construction.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement apply_upload_payload; "
            "quantized uplinks (quant=) need it to fold decoded values")

    def quantize_update(self, client: Client, update: Any,
                        round_idx: int) -> Any:
        """Quantize a freshly trained update's uplink (once per update).

        No-op without an active quant config.  Otherwise encodes
        :meth:`upload_payload` through the stochastic codec — RNG keyed
        ``(seed, "quant", round, client)`` so executor replays and
        retransmissions reproduce identical bytes — applies per-client
        error feedback from ``client.local_state["quant_residual"]``,
        writes the dequantized values back via
        :meth:`apply_upload_payload`, and stashes the exact wire dict on
        the update under ``QUANT_WIRE_KEY`` for :meth:`wire_payload`.
        """
        if self.quant is None:
            return update
        if not isinstance(update, dict):
            raise TypeError(
                f"{type(self).__name__} returned a non-dict update; the "
                "quantized transport needs a dict to stash its wire payload")
        payload = self.upload_payload(update)
        rng = spawn_rng(self.seed, "quant", round_idx, client.client_id)
        residuals = None
        if self.quant.error_feedback:
            residuals = client.local_state.setdefault("quant_residual", {})
        wire_dict, decoded = quantize_payload(payload, self.quant, rng,
                                              residuals)
        self.apply_upload_payload(update, decoded)
        update[QUANT_WIRE_KEY] = wire_dict
        return update

    def wire_payload(self, update: Any) -> dict[str, np.ndarray]:
        """The uplink payload as it crosses the wire.

        Returns the quantized encoding stashed by :meth:`quantize_update`
        when present, else :meth:`upload_payload`.  Every uplink
        byte-charging site (sync exchange, faulty transport, async
        delivery) goes through this accessor so the ledger always charges
        the true transmitted bytes.
        """
        if isinstance(update, dict):
            stashed = update.get(QUANT_WIRE_KEY)
            if stashed is not None:
                return stashed
        return self.upload_payload(update)

    def aggregate(self, updates: list[Any], round_idx: int) -> None:
        raise NotImplementedError

    def aggregate_weighted(self, updates: list[Any],
                           weights: Sequence[float], round_idx: int) -> None:
        """Fold updates with per-update multiplicative weights (async path).

        The asynchronous runtime discounts stale updates by
        ``1/(1+staleness)^alpha`` (DESIGN.md §12).  When every weight is
        exactly 1.0 this delegates to :meth:`aggregate` — bitwise the
        synchronous path, which is what makes ``buffer_k == cohort size``
        async runs reproduce sync runs exactly.  The default otherwise
        scales each dict update's example count ``"n"`` by its weight, so
        any algorithm whose aggregation is an ``"n"``-weighted mean
        (FedAvg, FedProx, FedNova, FedTopK) discounts stale clients'
        shares; algorithms with richer aggregation geometry (SPATL's
        salient/index-wise path) override this.
        """
        if len(updates) != len(weights):
            raise ValueError("updates/weights length mismatch")
        if all(w == 1.0 for w in weights):
            self.aggregate(updates, round_idx)
            return
        scaled = []
        for update, w in zip(updates, weights):
            if w <= 0.0:
                raise ValueError(f"aggregation weight must be > 0, got {w}")
            if isinstance(update, dict) and "n" in update:
                update = dict(update)
                update["n"] = update["n"] * w
            scaled.append(update)
        self.aggregate(scaled, round_idx)

    def client_eval_model(self, client: Client):
        """Model used to evaluate ``client`` (global by default)."""
        return self.global_model

    def make_fold(self, spill, weighted: bool = False):
        """Streaming-fold accumulator shadowing :meth:`aggregate`.

        The population-scale loop (:mod:`repro.fl.scale`, DESIGN.md §13)
        folds each upload as it arrives instead of materializing the
        cohort.  The base implementation returns the lossless
        spill-then-replay fold, which is bitwise-correct for *every*
        algorithm; subclasses whose aggregation decomposes into
        running accumulators (FedAvg's weighted mean, SPATL's Eq. 12
        counts) override it with a true O(model) fold.
        """
        from repro.fl.scale.fold import SpillReplayFold
        return SpillReplayFold(self, spill, weighted=weighted)

    # ------------------------------------------- parallel-execution hooks
    # These describe the server-side state a worker process needs to run
    # one client exchange, and the per-client state it must hand back.
    # The base implementations cover algorithms whose only per-round
    # mutable server state is the global model (FedAvg, FedProx, FedTopK);
    # subclasses with extra state (control variates, server momentum,
    # selection-policy agents) extend them.  See DESIGN.md §9.

    def worker_sync_state(self) -> dict[str, np.ndarray]:
        """Server state a worker needs before running any client this round,
        as a flat array dict (shipped through :func:`serialize_state`)."""
        return {f"model.{k}": v
                for k, v in self.global_model.state_dict().items()}

    def load_worker_sync_state(self, state: dict[str, np.ndarray]) -> None:
        """Install :meth:`worker_sync_state` output into this replica."""
        model_state = {k[len("model."):]: v for k, v in state.items()
                       if k.startswith("model.")}
        self.global_model.load_state_dict(model_state)

    def encoded_sync_state(self) -> bytes:
        """:meth:`worker_sync_state` as wire bytes, broadcast-cached.

        The sync state is identical for every worker of a round, so it is
        framed once under the round's generation token ("sync" channel of
        the :class:`~repro.fl.wire.BroadcastCache`) — repeat calls within
        a round (e.g. for a re-sampled cohort) return the cached blob.
        """
        return self._broadcast.encode(self.worker_sync_state(),
                                      token=self._bcast_gen, channel="sync",
                                      variant=self._bcast_variant)

    @property
    def _bcast_variant(self):
        """Broadcast-cache variant key: the quant config's identity.

        Folded into every cache key so a quantization-config change can
        never serve a blob encoded under a different config
        (DESIGN.md §16) — even if ``self.quant`` is mutated mid-run.
        """
        return self.quant.key if self.quant is not None else None

    def client_context(self, client: Client) -> Any:
        """Per-client server-side state to ship *to* the worker (beyond
        ``client.local_state``, which always travels).  None by default."""
        return None

    def apply_client_context(self, client: Client, context: Any) -> None:
        """Install :meth:`client_context` output on a worker replica."""

    def client_result_context(self, client: Client) -> Any:
        """Per-client server-side state the worker sends *back* after the
        exchange (e.g. updated selection-policy agents).  None by default."""
        return None

    def commit_client_result_context(self, client: Client,
                                     context: Any) -> None:
        """Fold a worker's :meth:`client_result_context` into the parent."""

    # Class-level so the "non-dict update" warning fires once per
    # algorithm class, not once per round.
    _warned_lossless_update = False

    def update_train_loss(self, update: Any) -> float:
        """Extract the training loss from an update, uniformly.

        Every built-in algorithm returns a dict with a ``"train_loss"``
        key; an update without one yields ``nan`` and a single warning
        (per algorithm class) rather than silently skewing
        ``RoundResult.avg_train_loss`` every round.
        """
        if isinstance(update, dict) and "train_loss" in update:
            return float(update["train_loss"])
        if not type(self)._warned_lossless_update:
            type(self)._warned_lossless_update = True
            warnings.warn(
                f"{type(self).__name__} updates carry no 'train_loss' key; "
                "RoundResult.avg_train_loss will ignore them",
                RuntimeWarning, stacklevel=2)
        return float("nan")

    def close(self) -> None:
        """Release executor resources (worker pools). Idempotent."""
        self.executor.close()

    # ------------------------------------------------------------ loop
    def run_round(self, round_idx: int) -> RoundResult:
        """One synchronous round with (opt-in) fault tolerance.

        Without a fault model this is the original protocol: every
        sampled client trains and uploads.  With one, each client gets
        ``retry_policy.max_attempts`` tries; if fewer than
        ``min_clients`` updates survive, the cohort is re-sampled with a
        fresh seed salt up to ``max_round_resamples`` times, after which
        the round is *skipped* (no aggregation — the global model is
        untouched and the round index still advances).

        Each protocol phase runs inside a tracer span (no-op by default)
        and round-level counters land in the default metrics registry;
        neither touches numerics, so traced runs stay seed-identical.
        """
        tracer = get_tracer()
        # New round ⇒ new broadcast generation: global state may have
        # mutated since the last aggregate, so cached downlink/sync
        # encodings from earlier rounds must not be served under the old
        # token.  Within one round the server state is constant (all
        # mutation happens in ``aggregate``, after every collect), so one
        # token per round is exactly the right granularity.
        self._bcast_gen += 1
        if self.transport is not None:
            self.transport.token = self._bcast_gen
        with tracer.span("round", round=round_idx) as round_span:
            stats = FaultStats()
            quorum = max(1, self.min_clients)
            salt = 0
            while True:
                with tracer.span("sample", round=round_idx, salt=salt):
                    selected = sample_clients(self.clients, self.sample_ratio,
                                              self.seed, round_idx, salt=salt)
                updates, losses = self._collect_updates(selected, round_idx,
                                                        salt, stats)
                if self.fault_model is None or len(updates) >= quorum:
                    break
                if salt >= self.max_round_resamples:
                    break
                salt += 1
                stats.n_resamples += 1
            # Drop accounting is finalized once per round: a client that
            # failed in one cohort iteration but delivered after a re-sample
            # is withdrawn, and re-drops of the same client collapse to one
            # — RoundResult.n_dropped counts distinct clients that never
            # delivered, not failure events (those are the attempt counters).
            stats.finalize_drops()
            committed = len(updates) >= quorum
            if committed:
                with tracer.span("aggregate", round=round_idx,
                                 n_updates=len(updates)):
                    self.aggregate(updates, round_idx)
            self.rounds_completed = round_idx + 1
            self.fault_stats.merge(stats)
            with tracer.span("evaluate", round=round_idx):
                acc = self.evaluate_all()
            finite = [v for v in losses if np.isfinite(v)]
            avg_loss = float(np.mean(finite)) if finite else float("nan")
            result = RoundResult(round_idx, avg_loss, acc, len(updates),
                                 self.ledger.round_bytes(round_idx),
                                 n_dropped=stats.n_dropped,
                                 n_retries=stats.n_retries,
                                 n_corrupt=stats.n_corrupt,
                                 n_resamples=stats.n_resamples,
                                 committed=committed)
            round_span.set(val_acc=acc, n_participants=len(updates),
                           bytes=result.round_bytes, committed=committed)
        metrics = get_registry()
        metrics.counter("fl.rounds", algorithm=self.name).inc()
        metrics.counter("fl.client_updates", algorithm=self.name).inc(len(updates))
        metrics.counter("fl.bytes", algorithm=self.name).inc(result.round_bytes)
        metrics.gauge("fl.val_acc", algorithm=self.name).set(acc)
        if tracer.enabled:
            metrics.histogram("fl.round_seconds",
                              algorithm=self.name).observe(round_span.duration)
        return result

    def _collect_updates(self, selected: Sequence[Client], round_idx: int,
                         salt: int, stats: FaultStats):
        """Gather surviving updates (and their losses) from a cohort.

        Delegates to the configured :class:`RoundExecutor`; results are
        committed in cohort order regardless of which worker finished
        first, so every executor yields identical aggregation inputs.
        """
        return self.executor.collect(self, selected, round_idx, salt, stats)

    def _client_exchange(self, client: Client, round_idx: int, salt: int,
                         stats: FaultStats) -> Any:
        """Download → train → upload for one client, with retries.

        The fault-free path is byte-identical to the original loop.  Under
        a fault model, a completed local update is cached across attempts
        — an upload corruption triggers a *retransmission*, never silent
        retraining — and a mid-training crash rolls the client's
        persistent state back to its pre-round snapshot before retrying.

        When a tracer is enabled on the fault-free path, each payload
        additionally makes one pass through the wire codec
        (serialize → deserialize, result discarded) so the trace's codec
        spans carry the same byte totals as the ledger.  Numerics and
        accounting are untouched: the codec is lossless and the ledger
        still records ``payload_nbytes`` (== the serialized length).
        The downlink pass serves its blob from the round's
        :class:`~repro.fl.wire.BroadcastCache` (the payload is
        client-invariant) and the upload pass serializes into arena
        scratch; both decode zero-copy — the spans keep their exact byte
        counts, only the CPU cost drops.
        """
        tracer = get_tracer()
        cid = client.client_id
        if self.fault_model is None:
            with tracer.span("download", round=round_idx, client=cid) as span:
                down = self.download_payload(client)
                down_bytes = payload_nbytes(down)
                span.set(bytes=down_bytes)
                if tracer.enabled:
                    blob = self._broadcast.encode(down, token=self._bcast_gen,
                                                  channel="down",
                                                  variant=self._bcast_variant)
                    deserialize_state(blob, copy=False)
            self.ledger.record_down(round_idx, cid, down_bytes)
            with tracer.span("local_update", round=round_idx, client=cid):
                update = self.local_update(client, round_idx)
            update = self.quantize_update(client, update, round_idx)
            with tracer.span("upload", round=round_idx, client=cid) as span:
                up = self.wire_payload(update)
                up_bytes = payload_nbytes(up)
                span.set(bytes=up_bytes)
                if tracer.enabled:
                    codec_validate(up, owner=self)
            self.ledger.record_up(round_idx, cid, up_bytes)
            return update

        fm = self.fault_model
        update = None
        failure: ClientFailure | None = None
        for attempt in range(self.retry_policy.max_attempts):
            with tracer.span("attempt", round=round_idx, client=cid,
                             attempt=attempt, salt=salt) as attempt_span:
                try:
                    if update is None:
                        fm.check_available(round_idx, cid, salt, attempt)
                        with tracer.span("download", round=round_idx,
                                         client=cid):
                            down = self.download_payload(client)
                            self.transport.download(round_idx, cid, down,
                                                    salt, attempt)
                        fm.check_straggler(round_idx, cid, salt, attempt,
                                           self.epochs_for(client, round_idx))
                        snapshot = client.snapshot_local_state()
                        with tracer.span("local_update", round=round_idx,
                                         client=cid):
                            update = self.local_update(client, round_idx)
                        # Quantize before the crash draw: a crash rolls the
                        # client's state (incl. EF residuals) back to the
                        # pre-round snapshot, so the retrain re-quantizes
                        # from a clean slate with the same seeded codes.
                        update = self.quantize_update(client, update,
                                                      round_idx)
                        try:
                            fm.check_crash(round_idx, cid, salt, attempt)
                        except ClientCrashed:
                            client.restore_local_state(snapshot)
                            update = None
                            raise
                    with tracer.span("upload", round=round_idx, client=cid):
                        up = self.wire_payload(update)
                        self.transport.upload(round_idx, cid, up, salt,
                                              attempt)
                    return update
                except ClientFailure as err:
                    attempt_span.set(failure=type(err).__name__)
                    stats.record_attempt_failure(err)
                    failure = err
            if attempt + 1 < self.retry_policy.max_attempts:
                stats.n_retries += 1
                stats.backoff_time += self.retry_policy.delay(attempt)
        raise failure

    def evaluate_all(self) -> float:
        """Average local validation top-1 accuracy across *all* clients."""
        accs = []
        for client in self.clients:
            model = self.client_eval_model(client)
            acc, _ = client.evaluate(model)
            accs.append(acc)
        return float(np.mean(accs))

    def per_client_accuracy(self) -> list[float]:
        """Per-client accuracies (the paper's local-accuracy figure)."""
        return [client.evaluate(self.client_eval_model(client))[0]
                for client in self.clients]

    def run(self, rounds: int, target_accuracy: float | None = None,
            patience: int | None = None, log: ExperimentLog | None = None,
            verbose: bool = False) -> ExperimentLog:
        """Run up to ``rounds`` rounds.

        Stops early when ``target_accuracy`` is reached (Table I protocol)
        or when the accuracy stream stops improving for ``patience`` rounds
        (Table II "train to converge" protocol).
        """
        log = log or ExperimentLog(self.name, verbose=verbose)
        stopper = EarlyStopper(patience=patience) if patience else None
        for r in range(self.rounds_completed, self.rounds_completed + rounds):
            result = self.run_round(r)
            scalars = dict(round=r, train_loss=result.avg_train_loss,
                           val_acc=result.avg_val_acc,
                           round_gb=result.round_bytes / 2 ** 30,
                           total_gb=self.ledger.total_gb())
            if self.fault_model is not None:
                scalars.update(n_dropped=result.n_dropped,
                               n_retries=result.n_retries,
                               n_corrupt=result.n_corrupt,
                               n_resamples=result.n_resamples,
                               committed=float(result.committed))
            log.log(**scalars)
            if target_accuracy is not None and result.avg_val_acc >= target_accuracy:
                log.meta["reached_target_at"] = r + 1
                break
            if stopper is not None and stopper.update(result.avg_val_acc):
                log.meta["converged_at"] = r + 1
                break
        # Always overwrite: a resumed run must report the *current* round
        # count, not the stale pre-resume value a setdefault would keep.
        log.meta["rounds_run"] = self.rounds_completed
        log.meta["total_gb"] = self.ledger.total_gb()
        log.meta["per_round_per_client_mb"] = self.ledger.per_round_per_client_mb()
        if self.fault_model is not None:
            log.meta["fault_totals"] = self.fault_stats.as_dict()
        return log
