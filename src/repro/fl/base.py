"""Server round loop shared by every FL algorithm (baselines and SPATL).

The loop follows the standard synchronous FL protocol of the paper's
Figure 1: sample clients → download global state → local updates → upload →
aggregate → evaluate.  Subclasses implement four hooks:

- ``download_payload(client)`` — what the server sends (for accounting and
  for the client's starting state);
- ``local_update(client, round_idx)`` — run local training, return an
  update object;
- ``upload_payload(update)`` — what the client sends back (accounting);
- ``aggregate(updates, round_idx)`` — fold uploads into the global state.

Evaluation reports the **average local top-1 accuracy across all clients**
(participating or not), matching §V-B: "we allocate each client a local
non-IID training dataset and a validation dataset to evaluate the top-1
accuracy ... among heterogeneous clients".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.fl.client import Client
from repro.fl.comm import CommLedger, payload_nbytes
from repro.models.split import SplitModel
from repro.utils.logging import ExperimentLog
from repro.utils.metrics import EarlyStopper
from repro.utils.rng import spawn_rng


def sample_clients(clients: Sequence[Client], sample_ratio: float, seed: int,
                   round_idx: int) -> list[Client]:
    """Uniformly sample ``ceil(ratio * n)`` distinct clients for a round."""
    if not 0.0 < sample_ratio <= 1.0:
        raise ValueError("sample_ratio must be in (0, 1]")
    n = len(clients)
    k = max(1, int(np.ceil(sample_ratio * n)))
    rng = spawn_rng(seed, "sampling", round_idx)
    chosen = rng.choice(n, size=k, replace=False)
    return [clients[i] for i in sorted(chosen)]


@dataclass
class RoundResult:
    """Metrics of one communication round."""

    round_idx: int
    avg_train_loss: float
    avg_val_acc: float
    n_participants: int
    round_bytes: int


class FederatedAlgorithm:
    """Base class; see module docstring for the hook contract."""

    name = "base"

    def __init__(self, model_fn: Callable[[], SplitModel], clients: Sequence[Client],
                 lr: float = 0.01, local_epochs: int | tuple[int, int] = 10,
                 sample_ratio: float = 1.0,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 max_grad_norm: float | None = None, seed: int = 0):
        self.model_fn = model_fn
        self.clients = list(clients)
        if not self.clients:
            raise ValueError("need at least one client")
        self.lr = lr
        # System heterogeneity: a (lo, hi) range makes each client draw its
        # own epoch count per round (slow devices do less work) — the
        # objective-inconsistency regime FedNova targets.  An int keeps the
        # paper's uniform "10 rounds locally".
        if isinstance(local_epochs, tuple):
            lo, hi = local_epochs
            if not 1 <= lo <= hi:
                raise ValueError(f"bad local_epochs range {local_epochs}")
        self.local_epochs = local_epochs
        self.sample_ratio = sample_ratio
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.seed = seed
        self.global_model: SplitModel = model_fn()
        self.ledger = CommLedger()
        self.rounds_completed = 0

    def epochs_for(self, client: Client, round_idx: int) -> int:
        """Local epochs this client runs this round.

        Uniform when ``local_epochs`` is an int; drawn per (client, round)
        from the configured range when it is a tuple (system heterogeneity).
        """
        if isinstance(self.local_epochs, tuple):
            lo, hi = self.local_epochs
            rng = spawn_rng(self.seed, "epochs", round_idx, client.client_id)
            return int(rng.integers(lo, hi + 1))
        return int(self.local_epochs)

    # ------------------------------------------------------------ hooks
    def download_payload(self, client: Client) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def local_update(self, client: Client, round_idx: int) -> Any:
        raise NotImplementedError

    def upload_payload(self, update: Any) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def aggregate(self, updates: list[Any], round_idx: int) -> None:
        raise NotImplementedError

    def client_eval_model(self, client: Client):
        """Model used to evaluate ``client`` (global by default)."""
        return self.global_model

    # ------------------------------------------------------------ loop
    def run_round(self, round_idx: int) -> RoundResult:
        selected = sample_clients(self.clients, self.sample_ratio, self.seed,
                                  round_idx)
        updates = []
        losses = []
        for client in selected:
            down = self.download_payload(client)
            self.ledger.record_down(round_idx, client.client_id,
                                    payload_nbytes(down))
            update = self.local_update(client, round_idx)
            updates.append(update)
            losses.append(update.get("train_loss", float("nan"))
                          if isinstance(update, dict) else float("nan"))
            up = self.upload_payload(update)
            self.ledger.record_up(round_idx, client.client_id,
                                  payload_nbytes(up))
        self.aggregate(updates, round_idx)
        self.rounds_completed = round_idx + 1
        acc = self.evaluate_all()
        return RoundResult(round_idx, float(np.nanmean(losses)), acc,
                           len(selected), self.ledger.round_bytes(round_idx))

    def evaluate_all(self) -> float:
        """Average local validation top-1 accuracy across *all* clients."""
        accs = []
        for client in self.clients:
            model = self.client_eval_model(client)
            acc, _ = client.evaluate(model)
            accs.append(acc)
        return float(np.mean(accs))

    def per_client_accuracy(self) -> list[float]:
        """Per-client accuracies (the paper's local-accuracy figure)."""
        return [client.evaluate(self.client_eval_model(client))[0]
                for client in self.clients]

    def run(self, rounds: int, target_accuracy: float | None = None,
            patience: int | None = None, log: ExperimentLog | None = None,
            verbose: bool = False) -> ExperimentLog:
        """Run up to ``rounds`` rounds.

        Stops early when ``target_accuracy`` is reached (Table I protocol)
        or when the accuracy stream stops improving for ``patience`` rounds
        (Table II "train to converge" protocol).
        """
        log = log or ExperimentLog(self.name, verbose=verbose)
        stopper = EarlyStopper(patience=patience) if patience else None
        for r in range(self.rounds_completed, self.rounds_completed + rounds):
            result = self.run_round(r)
            log.log(round=r, train_loss=result.avg_train_loss,
                    val_acc=result.avg_val_acc,
                    round_gb=result.round_bytes / 2 ** 30,
                    total_gb=self.ledger.total_gb())
            if target_accuracy is not None and result.avg_val_acc >= target_accuracy:
                log.meta["reached_target_at"] = r + 1
                break
            if stopper is not None and stopper.update(result.avg_val_acc):
                log.meta["converged_at"] = r + 1
                break
        log.meta.setdefault("rounds_run", self.rounds_completed)
        log.meta["total_gb"] = self.ledger.total_gb()
        log.meta["per_round_per_client_mb"] = self.ledger.per_round_per_client_mb()
        return log
