"""Checkpointing for long federated runs.

Paper-scale experiments run for hundreds of rounds; a crash should not
discard them.  ``save_checkpoint`` captures everything a run needs to
resume bit-exactly: the global model, the round counter, the communication
ledger, per-client persistent state (control variates, private predictors
— RL agent policies included, since they are plain state dicts), and the
server-side control variate where the algorithm has one.

The asynchronous runtime (DESIGN.md §12) extends the same format:
``save_async_checkpoint`` additionally captures the virtual clock (time,
schedule counter, and the pending event heap), the in-flight job set with
each undelivered update (losslessly re-encoded through the wire-layer
pytree codec), the commit buffer, the admission queue, the dedup
fingerprint registry, and the runner's counters — so a run interrupted
*mid-buffer* resumes to a bit-identical trajectory.

The format is a single ``.npz`` (arrays) plus a JSON manifest entry inside
it, so checkpoints need no pickling of code objects and stay loadable
across library versions.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.gradient_control import ControlVariate
from repro.fl.async_runtime import (AsyncFederatedRunner, StepResult,
                                    VirtualClock, _Job)
from repro.fl.base import FederatedAlgorithm
from repro.fl.comm import decode_update, encode_update
from repro.fl.resilience import FaultStats


def _flatten(prefix: str, state: dict, out: dict[str, np.ndarray]) -> None:
    for key, value in state.items():
        out[f"{prefix}{key}"] = np.asarray(value)


# --------------------------------------------------------------------------
# Shared collect/apply: the algorithm-owned state (model, variates, clients,
# fault stats, ledger) is identical between the sync and async formats.
# --------------------------------------------------------------------------

def _collect_algo(algo: FederatedAlgorithm,
                  arrays: dict[str, np.ndarray],
                  include_clients: bool = True) -> dict:
    """Flatten the algorithm's resumable state into ``arrays``; return the
    manifest fragment describing it.

    ``include_clients=False`` skips per-client ``local_state`` — used by
    the population-scale runner (:mod:`repro.fl.scale`), whose client
    state lives in the spill-to-disk store and is checkpointed as a
    store manifest instead; walking 100k virtual clients here would
    materialize them all.
    """
    manifest: dict = {
        "algorithm": algo.name,
        "rounds_completed": algo.rounds_completed,
        "n_clients": len(algo.clients),
        "includes_clients": include_clients,
        "client_state_keys": {},
    }
    _flatten("global.", algo.global_model.state_dict(), arrays)
    if hasattr(algo, "c_global"):
        cg = algo.c_global
        values = cg.values if isinstance(cg, ControlVariate) else cg
        _flatten("c_global.", values, arrays)
        manifest["has_c_global"] = True
        manifest["c_global_is_variate"] = isinstance(cg, ControlVariate)
    if include_clients:
        for client in algo.clients:
            cid = client.client_id
            keys = []
            for key, value in client.local_state.items():
                if isinstance(value, ControlVariate):
                    _flatten(f"client.{cid}.{key}.", value.values, arrays)
                    keys.append([key, "variate"])
                elif isinstance(value, dict):
                    _flatten(f"client.{cid}.{key}.", value, arrays)
                    keys.append([key, "dict"])
            manifest["client_state_keys"][str(cid)] = keys
    # cumulative fault-tolerance counters (resumed runs keep reporting the
    # drops/retries/corruptions that happened before the crash)
    manifest["fault_stats"] = algo.fault_stats.as_dict()
    manifest["ledger"] = {
        "uplink": {str(r): {str(c): n for c, n in d.items()}
                   for r, d in algo.ledger.uplink.items()},
        "downlink": {str(r): {str(c): n for c, n in d.items()}
                     for r, d in algo.ledger.downlink.items()},
    }
    return manifest


def _apply_algo(algo: FederatedAlgorithm, data, manifest: dict) -> None:
    """Restore the algorithm-owned state collected by :func:`_collect_algo`."""
    if manifest["n_clients"] != len(algo.clients):
        raise ValueError(
            f"checkpoint has {manifest['n_clients']} clients, "
            f"algorithm has {len(algo.clients)}")
    prefixes = sorted(data.files)

    def collect(prefix: str) -> dict[str, np.ndarray]:
        plen = len(prefix)
        return {k[plen:]: data[k] for k in prefixes if k.startswith(prefix)}

    algo.global_model.load_state_dict(collect("global."))
    if manifest.get("has_c_global"):
        values = collect("c_global.")
        if manifest.get("c_global_is_variate"):
            cv = ControlVariate({})
            cv.values = values
            algo.c_global = cv
        else:
            algo.c_global = values
    if manifest.get("includes_clients", True):
        for client in algo.clients:
            keys = manifest["client_state_keys"].get(str(client.client_id), [])
            client.local_state.clear()
            for key, kind in keys:
                payload = collect(f"client.{client.client_id}.{key}.")
                if kind == "variate":
                    cv = ControlVariate({})
                    cv.values = payload
                    client.local_state[key] = cv
                else:
                    client.local_state[key] = payload
    algo.rounds_completed = manifest["rounds_completed"]
    algo.fault_stats = FaultStats.from_dict(manifest.get("fault_stats", {}))
    algo.ledger.uplink.clear()
    algo.ledger.downlink.clear()
    for direction in ("uplink", "downlink"):
        store = getattr(algo.ledger, direction)
        for r, per_client in manifest["ledger"][direction].items():
            store[int(r)] = {int(c): int(n) for c, n in per_client.items()}


def _write(path: str | Path, arrays: dict[str, np.ndarray],
           manifest: dict) -> None:
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8)
    np.savez_compressed(Path(path), **arrays)


# ------------------------------------------------------------- sync format

def save_checkpoint(algo: FederatedAlgorithm, path: str | Path) -> None:
    """Serialise a run's full state to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    manifest = _collect_algo(algo, arrays)
    _write(path, arrays, manifest)


def load_checkpoint(algo: FederatedAlgorithm, path: str | Path) -> None:
    """Restore state saved by :func:`save_checkpoint` into ``algo``.

    ``algo`` must be constructed with the same model/clients topology;
    mismatches raise ``KeyError``/``ValueError``.
    """
    with np.load(Path(path)) as data:
        manifest = json.loads(bytes(data["__manifest__"]).decode())
        _apply_algo(algo, data, manifest)


# ------------------------------------------------------------ async format

def save_async_checkpoint(runner: AsyncFederatedRunner,
                          path: str | Path) -> None:
    """Snapshot an async run mid-flight: algorithm state plus the virtual
    clock, pending events, jobs (with undelivered updates), buffer,
    queue, dedup registry, and counters."""
    algo = runner.algo
    arrays: dict[str, np.ndarray] = {}
    manifest = _collect_algo(algo, arrays)
    jobs_meta: dict[str, dict] = {}
    for jid, job in runner.jobs.items():
        # In update-store mode a live job's update lives on disk; it is
        # re-materialized here so the checkpoint stays self-contained.
        update = runner._job_update(job)
        jobs_meta[str(jid)] = {
            "client_id": job.client_id,
            "dispatch_step": job.dispatch_step,
            "dispatch_time": job.dispatch_time,
            "duration": job.duration,
            "crashed": job.crashed,
            "train_loss": job.train_loss,
            "fingerprint": job.fingerprint,
            "up_bytes": job.up_bytes,
            "accepted": job.accepted,
            "has_update": update is not None,
        }
        if update is not None:
            arrays[f"job.{jid}.update"] = np.frombuffer(
                encode_update(update), dtype=np.uint8)
    stats = runner.stats
    manifest["async"] = {
        "clock": runner.clock.snapshot(),
        "server_step": runner.server_step,
        "commit_epoch": runner._commit_epoch,
        "next_job": runner._next_job,
        "started": runner._started,
        "stalled": runner.stalled,
        "client_jobs": {str(c): n for c, n in runner._client_jobs.items()},
        "inflight": sorted(runner.inflight),
        "queue": list(runner.queue),
        "buffer": list(runner.buffer),
        "fp_registry": [[cid, fp, jid]
                        for (cid, fp), jid in runner._fp_registry.items()],
        "dedup_evictions": runner.dedup_evictions,
        "counters": dict(runner.counters),
        "jobs": jobs_meta,
        "stats": stats.as_dict(),
        # staged per-client outcome state (distinct-drop accounting is
        # withdrawn-on-delivery, so both sides must survive a resume)
        "stats_drops": {str(c): kind for c, kind in stats._drops.items()},
        "stats_delivered": sorted(stats._delivered),
        "step_results": [asdict(r) for r in runner.step_results],
        "profile": asdict(runner.profile),
        "config": asdict(runner.config),
    }
    _write(path, arrays, manifest)


def load_async_checkpoint(runner: AsyncFederatedRunner,
                          path: str | Path) -> None:
    """Restore a snapshot from :func:`save_async_checkpoint`.

    ``runner`` must be freshly constructed with the *same* profile and
    config the snapshot was taken under (both are validated — a resumed
    run with different knobs would silently diverge otherwise).
    """
    with np.load(Path(path)) as data:
        manifest = json.loads(bytes(data["__manifest__"]).decode())
        if "async" not in manifest:
            raise ValueError("not an async checkpoint (use load_checkpoint)")
        state = manifest["async"]
        for name, current in (("profile", asdict(runner.profile)),
                              ("config", asdict(runner.config))):
            if state[name] != json.loads(json.dumps(current)):
                raise ValueError(
                    f"checkpoint {name} does not match the runner's: "
                    f"{state[name]} != {current}")
        _apply_algo(runner.algo, data, manifest)
        runner.clock = VirtualClock.restore(state["clock"])
        runner.server_step = int(state["server_step"])
        runner._commit_epoch = int(state["commit_epoch"])
        runner._next_job = int(state["next_job"])
        runner._started = bool(state["started"])
        runner.stalled = bool(state["stalled"])
        runner._client_jobs = {int(c): int(n)
                               for c, n in state["client_jobs"].items()}
        runner.inflight = set(state["inflight"])
        runner.queue = list(state["queue"])
        runner.buffer = list(state["buffer"])
        from collections import OrderedDict
        runner._fp_registry = OrderedDict(
            ((int(cid), int(fp)), int(jid))
            for cid, fp, jid in state["fp_registry"])
        runner.dedup_evictions = int(state.get("dedup_evictions", 0))
        runner.counters = {k: int(v) for k, v in state["counters"].items()}
        runner.jobs = {}
        for jid_str, meta in state["jobs"].items():
            jid = int(jid_str)
            update = None
            if meta["has_update"]:
                update = decode_update(bytes(data[f"job.{jid}.update"]))
                if runner._store is not None:
                    # Store mode: park the update back on disk; the job
                    # record itself stays payload-free.
                    runner._store.put(f"job/{jid}",
                                      bytes(data[f"job.{jid}.update"]))
                    update = None
            runner.jobs[jid] = _Job(
                job_id=jid, client_id=int(meta["client_id"]),
                dispatch_step=int(meta["dispatch_step"]),
                dispatch_time=float(meta["dispatch_time"]),
                duration=float(meta["duration"]),
                crashed=bool(meta["crashed"]), update=update,
                train_loss=float(meta["train_loss"]),
                fingerprint=meta["fingerprint"], up_bytes=meta["up_bytes"],
                accepted=bool(meta["accepted"]))
        stats = FaultStats.from_dict(state["stats"])
        stats._drops = {int(c): kind
                        for c, kind in state["stats_drops"].items()}
        stats._delivered = set(state["stats_delivered"])
        runner.stats = stats
        runner.step_results = [StepResult(**r) for r in state["step_results"]]
