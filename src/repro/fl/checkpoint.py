"""Checkpointing for long federated runs.

Paper-scale experiments run for hundreds of rounds; a crash should not
discard them.  ``save_checkpoint`` captures everything a run needs to
resume bit-exactly: the global model, the round counter, the communication
ledger, per-client persistent state (control variates, private predictors
— RL agent policies included, since they are plain state dicts), and the
server-side control variate where the algorithm has one.

The format is a single ``.npz`` (arrays) plus a JSON manifest entry inside
it, so checkpoints need no pickling of code objects and stay loadable
across library versions.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.gradient_control import ControlVariate
from repro.fl.base import FederatedAlgorithm
from repro.fl.resilience import FaultStats


def _flatten(prefix: str, state: dict, out: dict[str, np.ndarray]) -> None:
    for key, value in state.items():
        out[f"{prefix}{key}"] = np.asarray(value)


def save_checkpoint(algo: FederatedAlgorithm, path: str | Path) -> None:
    """Serialise a run's full state to ``path`` (.npz)."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {
        "algorithm": algo.name,
        "rounds_completed": algo.rounds_completed,
        "n_clients": len(algo.clients),
        "client_state_keys": {},
    }
    _flatten("global.", algo.global_model.state_dict(), arrays)
    if hasattr(algo, "c_global"):
        cg = algo.c_global
        values = cg.values if isinstance(cg, ControlVariate) else cg
        _flatten("c_global.", values, arrays)
        manifest["has_c_global"] = True
        manifest["c_global_is_variate"] = isinstance(cg, ControlVariate)
    for client in algo.clients:
        cid = client.client_id
        keys = []
        for key, value in client.local_state.items():
            if isinstance(value, ControlVariate):
                _flatten(f"client.{cid}.{key}.", value.values, arrays)
                keys.append([key, "variate"])
            elif isinstance(value, dict):
                _flatten(f"client.{cid}.{key}.", value, arrays)
                keys.append([key, "dict"])
        manifest["client_state_keys"][str(cid)] = keys
    # cumulative fault-tolerance counters (resumed runs keep reporting the
    # drops/retries/corruptions that happened before the crash)
    manifest["fault_stats"] = algo.fault_stats.as_dict()
    # ledger
    manifest["ledger"] = {
        "uplink": {str(r): {str(c): n for c, n in d.items()}
                   for r, d in algo.ledger.uplink.items()},
        "downlink": {str(r): {str(c): n for c, n in d.items()}
                     for r, d in algo.ledger.downlink.items()},
    }
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_checkpoint(algo: FederatedAlgorithm, path: str | Path) -> None:
    """Restore state saved by :func:`save_checkpoint` into ``algo``.

    ``algo`` must be constructed with the same model/clients topology;
    mismatches raise ``KeyError``/``ValueError``.
    """
    with np.load(Path(path)) as data:
        manifest = json.loads(bytes(data["__manifest__"]).decode())
        if manifest["n_clients"] != len(algo.clients):
            raise ValueError(
                f"checkpoint has {manifest['n_clients']} clients, "
                f"algorithm has {len(algo.clients)}")
        prefixes = sorted(data.files)

        def collect(prefix: str) -> dict[str, np.ndarray]:
            plen = len(prefix)
            return {k[plen:]: data[k] for k in prefixes
                    if k.startswith(prefix)}

        algo.global_model.load_state_dict(collect("global."))
        if manifest.get("has_c_global"):
            values = collect("c_global.")
            if manifest.get("c_global_is_variate"):
                cv = ControlVariate({})
                cv.values = values
                algo.c_global = cv
            else:
                algo.c_global = values
        for client in algo.clients:
            keys = manifest["client_state_keys"].get(str(client.client_id), [])
            client.local_state.clear()
            for key, kind in keys:
                payload = collect(f"client.{client.client_id}.{key}.")
                if kind == "variate":
                    cv = ControlVariate({})
                    cv.values = payload
                    client.local_state[key] = cv
                else:
                    client.local_state[key] = payload
        algo.rounds_completed = manifest["rounds_completed"]
        algo.fault_stats = FaultStats.from_dict(
            manifest.get("fault_stats", {}))
        algo.ledger.uplink.clear()
        algo.ledger.downlink.clear()
        for direction in ("uplink", "downlink"):
            store = getattr(algo.ledger, direction)
            for r, per_client in manifest["ledger"][direction].items():
                store[int(r)] = {int(c): int(n)
                                 for c, n in per_client.items()}
