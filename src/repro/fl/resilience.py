"""Fault-tolerance primitives for the federated round loop.

Real FL deployments (the heterogeneous edge regime of §I/§IV) lose
clients mid-round: devices go offline, stragglers blow past the server's
deadline, and payloads arrive corrupted.  This module gives the server
loop a typed vocabulary for those failures plus the two recovery
mechanisms it applies:

- :class:`RetryPolicy` — capped exponential backoff per client attempt
  (the backoff delay is *simulated* time, accumulated in
  :class:`FaultStats` rather than slept);
- a quorum rule, enforced by ``FederatedAlgorithm.run_round``: a round
  commits only when at least ``min_clients`` updates survive, otherwise
  it is skipped and re-sampled with a fresh seed salt.

The exception hierarchy is deliberately shallow so algorithms can catch
:class:`ClientFailure` and stay agnostic to *why* a client was lost.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs.metrics import get_registry


def _rebuild_failure(cls: type, client_id: int, round_idx: int,
                     reason: str, entry: str | None = None,
                     offset: int | None = None) -> "ClientFailure":
    """Reconstruct a failure after a cross-process hop (pickle target).

    Subclass ``__init__`` signatures differ (duration, cause...), so
    rebuilding goes through ``__new__`` + the base initializer: the class
    identity, message, core fields, and codec context (``entry`` /
    ``offset``) survive; subclass-only extras (which may themselves be
    unpicklable, like a wrapped exception) do not.
    """
    failure = ClientFailure.__new__(cls)
    RuntimeError.__init__(failure,
                          f"client {client_id} round {round_idx}: {reason}")
    failure.client_id = client_id
    failure.round_idx = round_idx
    failure.reason = reason
    failure.entry = entry
    failure.offset = offset
    return failure


class ClientFailure(RuntimeError):
    """A client failed to deliver a usable update this attempt.

    ``entry`` / ``offset`` carry the codec context when the failure
    originated inside the wire path (a :class:`PayloadError` names the
    state-dict entry being decoded and the byte offset where decoding
    stopped); they are ``None`` for failures outside the codec.  Both
    survive the cross-process pickle hop, so a parent can still point at
    the corrupted entry of a payload that died in a worker.
    """

    def __init__(self, client_id: int, round_idx: int, reason: str,
                 entry: str | None = None, offset: int | None = None):
        super().__init__(
            f"client {client_id} round {round_idx}: {reason}")
        self.client_id = client_id
        self.round_idx = round_idx
        self.reason = reason
        self.entry = entry
        self.offset = offset

    def __reduce__(self):
        """Pickle support for shipping failures out of worker processes."""
        return (_rebuild_failure,
                (type(self), self.client_id, self.round_idx, self.reason,
                 self.entry, self.offset))


class ClientDropped(ClientFailure):
    """The client was unreachable (offline before/while participating)."""


class ClientCrashed(ClientDropped):
    """The client crashed mid-training; its persistent state is rolled
    back to the pre-round snapshot, as a real restarted process would
    reload it from disk."""


class WorkerCrashed(ClientDropped):
    """The *executor worker process* running this client died (segfault,
    OOM-kill, ``os._exit``).  Unlike the simulated faults above this is a
    real infrastructure failure: with no fault model configured it
    propagates out of ``run_round``; with one, the client is recorded as
    dropped and the pool is rebuilt (DESIGN.md §9)."""


class StragglerTimeout(ClientFailure):
    """The client's simulated round duration exceeded the server deadline.

    When the deadline fires *inside* the codec path (a transfer that was
    still decoding when time ran out), ``entry``/``offset`` locate how far
    the decode got; they stay ``None`` for plain compute stragglers.
    """

    def __init__(self, client_id: int, round_idx: int, duration: float,
                 timeout: float, entry: str | None = None,
                 offset: int | None = None):
        super().__init__(client_id, round_idx,
                         f"straggler took {duration:.2f} epoch-units "
                         f"(> timeout {timeout:.2f})",
                         entry=entry, offset=offset)
        self.duration = duration
        self.timeout = timeout


class TransferCorrupted(ClientFailure):
    """A payload failed checksum/structural validation after transfer.

    The codec context of the underlying :class:`PayloadError` — which
    entry was being decoded and at what byte offset validation stopped —
    is lifted onto the failure itself (``entry``/``offset``), so it
    survives even where ``cause`` cannot (the cross-process pickle hop
    drops wrapped exceptions)."""

    def __init__(self, client_id: int, round_idx: int, direction: str,
                 cause: Exception):
        super().__init__(client_id, round_idx,
                         f"{direction}link payload corrupted: {cause}",
                         entry=getattr(cause, "entry", None),
                         offset=getattr(cause, "offset", None))
        self.direction = direction
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``delay(a) = min(base * factor^a, cap)``.

    ``max_retries`` counts *extra* attempts after the first, so a client
    gets ``max_retries + 1`` chances per round before it is declared
    dropped.
    """

    max_retries: int = 2
    base_delay: float = 0.5
    backoff_factor: float = 2.0
    max_delay: float = 8.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0 or self.backoff_factor <= 0:
            raise ValueError("delays must be non-negative, factor positive")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Simulated seconds to wait after failed attempt ``attempt``."""
        return min(self.base_delay * self.backoff_factor ** attempt,
                   self.max_delay)


@dataclass
class FaultStats:
    """Counters for one round (or, accumulated, for a whole run).

    Attempt-level counters (``n_retries``, ``n_corrupt``...) count
    *events* and so may exceed the cohort size.  ``n_dropped`` counts
    client *outcomes*: distinct clients that never delivered an update
    within the round.  Drop candidates are staged in an internal log by
    :meth:`record_failure`; a later :meth:`record_delivery` for the same
    client (a retried-then-succeeded client, e.g. after a quorum
    re-sample) withdraws the candidate, and :meth:`finalize_drops` folds
    whatever remains into ``n_dropped`` — so a client re-dropped across
    re-sample iterations counts once, and one that eventually succeeded
    counts zero times.
    """

    n_dropped: int = 0     # distinct clients that never delivered this round
    n_retries: int = 0     # extra attempts performed
    n_corrupt: int = 0     # corrupted transfers detected (either direction)
    n_timeouts: int = 0    # straggler deadline misses
    n_crashes: int = 0     # mid-training crashes (state rolled back)
    n_resamples: int = 0   # quorum-failed re-samples of the round cohort
    backoff_time: float = 0.0  # simulated seconds spent backing off

    def __post_init__(self):
        # Round-scoped drop staging; not dataclass fields, so merge /
        # as_dict / equality stay pure counter arithmetic.  (Pickle ships
        # __dict__, so staged entries survive a process hop too.)
        self._drops: dict[int, str] = {}
        self._delivered: set[int] = set()

    def record_failure(self, failure: ClientFailure) -> None:
        """Stage a client that permanently failed an iteration (post-retries).

        Becomes an ``n_dropped`` count at :meth:`finalize_drops` unless a
        :meth:`record_delivery` for the same client lands first.
        """
        if failure.client_id not in self._delivered:
            self._drops.setdefault(failure.client_id,
                                   type(failure).__name__)

    def record_delivery(self, client_id: int) -> None:
        """A client delivered a usable update: withdraw any staged drop."""
        self._delivered.add(client_id)
        self._drops.pop(client_id, None)

    def finalize_drops(self) -> None:
        """Fold staged drops into ``n_dropped`` (idempotent; end of round)."""
        registry = get_registry()
        for kind in self._drops.values():
            self.n_dropped += 1
            registry.counter("fl.clients_dropped", kind=kind).inc()
        self._drops.clear()
        self._delivered.clear()

    def record_attempt_failure(self, failure: ClientFailure) -> None:
        """One attempt failed (may be retried)."""
        if isinstance(failure, TransferCorrupted):
            self.n_corrupt += 1
        elif isinstance(failure, StragglerTimeout):
            self.n_timeouts += 1
        elif isinstance(failure, ClientCrashed):
            self.n_crashes += 1
        get_registry().counter("fl.attempt_failures",
                               kind=type(failure).__name__).inc()

    def merge(self, other: "FaultStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
