"""Fault-tolerance primitives for the federated round loop.

Real FL deployments (the heterogeneous edge regime of §I/§IV) lose
clients mid-round: devices go offline, stragglers blow past the server's
deadline, and payloads arrive corrupted.  This module gives the server
loop a typed vocabulary for those failures plus the two recovery
mechanisms it applies:

- :class:`RetryPolicy` — capped exponential backoff per client attempt
  (the backoff delay is *simulated* time, accumulated in
  :class:`FaultStats` rather than slept);
- a quorum rule, enforced by ``FederatedAlgorithm.run_round``: a round
  commits only when at least ``min_clients`` updates survive, otherwise
  it is skipped and re-sampled with a fresh seed salt.

The exception hierarchy is deliberately shallow so algorithms can catch
:class:`ClientFailure` and stay agnostic to *why* a client was lost.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs.metrics import get_registry


def _rebuild_failure(cls: type, client_id: int, round_idx: int,
                     reason: str) -> "ClientFailure":
    """Reconstruct a failure after a cross-process hop (pickle target).

    Subclass ``__init__`` signatures differ (duration, cause...), so
    rebuilding goes through ``__new__`` + the base initializer: the class
    identity, message, and core fields survive; subclass-only extras
    (which may themselves be unpicklable) do not.
    """
    failure = ClientFailure.__new__(cls)
    RuntimeError.__init__(failure,
                          f"client {client_id} round {round_idx}: {reason}")
    failure.client_id = client_id
    failure.round_idx = round_idx
    failure.reason = reason
    return failure


class ClientFailure(RuntimeError):
    """A client failed to deliver a usable update this attempt."""

    def __init__(self, client_id: int, round_idx: int, reason: str):
        super().__init__(
            f"client {client_id} round {round_idx}: {reason}")
        self.client_id = client_id
        self.round_idx = round_idx
        self.reason = reason

    def __reduce__(self):
        """Pickle support for shipping failures out of worker processes."""
        return (_rebuild_failure,
                (type(self), self.client_id, self.round_idx, self.reason))


class ClientDropped(ClientFailure):
    """The client was unreachable (offline before/while participating)."""


class ClientCrashed(ClientDropped):
    """The client crashed mid-training; its persistent state is rolled
    back to the pre-round snapshot, as a real restarted process would
    reload it from disk."""


class WorkerCrashed(ClientDropped):
    """The *executor worker process* running this client died (segfault,
    OOM-kill, ``os._exit``).  Unlike the simulated faults above this is a
    real infrastructure failure: with no fault model configured it
    propagates out of ``run_round``; with one, the client is recorded as
    dropped and the pool is rebuilt (DESIGN.md §9)."""


class StragglerTimeout(ClientFailure):
    """The client's simulated round duration exceeded the server deadline."""

    def __init__(self, client_id: int, round_idx: int, duration: float,
                 timeout: float):
        super().__init__(client_id, round_idx,
                         f"straggler took {duration:.2f} epoch-units "
                         f"(> timeout {timeout:.2f})")
        self.duration = duration
        self.timeout = timeout


class TransferCorrupted(ClientFailure):
    """A payload failed checksum/structural validation after transfer."""

    def __init__(self, client_id: int, round_idx: int, direction: str,
                 cause: Exception):
        super().__init__(client_id, round_idx,
                         f"{direction}link payload corrupted: {cause}")
        self.direction = direction
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``delay(a) = min(base * factor^a, cap)``.

    ``max_retries`` counts *extra* attempts after the first, so a client
    gets ``max_retries + 1`` chances per round before it is declared
    dropped.
    """

    max_retries: int = 2
    base_delay: float = 0.5
    backoff_factor: float = 2.0
    max_delay: float = 8.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0 or self.backoff_factor <= 0:
            raise ValueError("delays must be non-negative, factor positive")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Simulated seconds to wait after failed attempt ``attempt``."""
        return min(self.base_delay * self.backoff_factor ** attempt,
                   self.max_delay)


@dataclass
class FaultStats:
    """Counters for one round (or, accumulated, for a whole run)."""

    n_dropped: int = 0     # clients that exhausted all attempts
    n_retries: int = 0     # extra attempts performed
    n_corrupt: int = 0     # corrupted transfers detected (either direction)
    n_timeouts: int = 0    # straggler deadline misses
    n_crashes: int = 0     # mid-training crashes (state rolled back)
    n_resamples: int = 0   # quorum-failed re-samples of the round cohort
    backoff_time: float = 0.0  # simulated seconds spent backing off

    def record_failure(self, failure: ClientFailure) -> None:
        """A client permanently failed this round (post-retries)."""
        self.n_dropped += 1
        get_registry().counter("fl.clients_dropped",
                               kind=type(failure).__name__).inc()

    def record_attempt_failure(self, failure: ClientFailure) -> None:
        """One attempt failed (may be retried)."""
        if isinstance(failure, TransferCorrupted):
            self.n_corrupt += 1
        elif isinstance(failure, StragglerTimeout):
            self.n_timeouts += 1
        elif isinstance(failure, ClientCrashed):
            self.n_crashes += 1
        get_registry().counter("fl.attempt_failures",
                               kind=type(failure).__name__).inc()

    def merge(self, other: "FaultStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
