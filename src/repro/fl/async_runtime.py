"""Event-driven asynchronous federated runtime (DESIGN.md §12).

The synchronous loop in :mod:`repro.fl.base` is lock-step: one straggler
stalls the whole cohort, and a client that crashes or arrives mid-round
is simply dropped.  This module is its event-driven sibling for the
heterogeneous-availability regime the paper targets (§I, §IV): clients
arrive, train, and upload on their own seeded schedules
(:class:`~repro.fl.faults.AsyncProfile`), and the server makes progress
from whichever clients respond — FedBuff-style buffered aggregation with
staleness-discounted updates.

Everything runs on a **deterministic virtual clock**: events live in a
heap keyed by ``(time, seq)`` where ``seq`` is a monotone schedule
counter, so ties break identically on every run and two runs with the
same seed replay the same event sequence exactly.  No wall time is read
anywhere.

Server semantics:

- **dispatch** — an arriving client is admitted while the in-flight set
  has room (``max_inflight``); beyond that it queues (bounded
  ``max_queue``) and past that it is rejected with a deterministic
  backoff re-arrival.  Admitted clients download the current global
  state (charged to the :class:`~repro.fl.comm.CommLedger` under the
  dispatch step) and train against it; the job's *dispatch step* is what
  staleness is later measured from.
- **buffer** — an upload that survives its flight lands in the commit
  buffer.  Duplicate deliveries are recognised by the wire layer's CRC32
  content fingerprint (:func:`~repro.fl.wire.state_fingerprint`) keyed
  by client, and dropped before any accounting — a dedup charges no
  bytes.
- **commit** — when ``buffer_k`` updates are buffered (or a commit
  deadline fires first), the server folds the buffer in deterministic
  ``(dispatch_step, job)`` order.  Each update is discounted by
  ``1/(1 + staleness)^alpha`` where staleness is the number of commits
  since its dispatch; all-fresh buffers take the *bitwise-identical*
  synchronous :meth:`~repro.fl.base.FederatedAlgorithm.aggregate` path.
  Commits are idempotent under deadline races: a deadline event carries
  the commit epoch it was armed for and is ignored once any commit
  advanced the epoch.

With ``buffer_k == cohort size``, ``max_inflight >= cohort``, uniform
durations, and no churn/crash, the async runtime reproduces the
synchronous loop's final global state **bitwise** — every client trains
from the same broadcast state, every commit sees zero staleness in
cohort order (the equivalence gate in ``benchmarks/bench_async.py``).
"""

from __future__ import annotations

import heapq
import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fl.base import FederatedAlgorithm
from repro.fl.comm import deserialize_state, payload_nbytes
from repro.fl.faults import AsyncProfile
from repro.fl.resilience import ClientCrashed, FaultStats
from repro.fl.wire import codec_validate, state_fingerprint
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

STALENESS_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def staleness_weight(staleness: int, alpha: float) -> float:
    """The FedBuff-style discount ``1/(1+s)^alpha`` (== 1.0 at s=0)."""
    if staleness < 0:
        raise ValueError("staleness must be >= 0")
    if staleness == 0:
        return 1.0
    return float(1.0 / (1.0 + staleness) ** alpha)


@dataclass(frozen=True)
class AsyncConfig:
    """Server-side knobs of the asynchronous runtime."""

    buffer_k: int = 2              # commit when this many updates buffered
    staleness_alpha: float = 0.5   # discount exponent (0 = no discounting)
    max_inflight: int = 8          # admission control: concurrent jobs
    max_queue: int = 16            # arrivals parked beyond max_inflight
    commit_deadline: float | None = None  # virtual time from first buffered
                                          # update to a forced commit
    eval_every: int = 0            # evaluate_all() every N commits (0 = never)
    flush_final: bool = True       # commit a partial buffer at run end
    dedup_capacity: int = 4096     # bounded CRC32 dedup registry (FIFO evict)

    def __post_init__(self):
        if self.buffer_k < 1:
            raise ValueError("buffer_k must be >= 1")
        if self.dedup_capacity < 1:
            raise ValueError("dedup_capacity must be >= 1")
        if self.staleness_alpha < 0:
            raise ValueError("staleness_alpha must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.commit_deadline is not None and self.commit_deadline <= 0:
            raise ValueError("commit_deadline must be > 0")
        if self.eval_every < 0:
            raise ValueError("eval_every must be >= 0")


class VirtualClock:
    """Deterministic discrete-event clock: a heap keyed by ``(time, seq)``.

    ``seq`` is assigned at scheduling time from a monotone counter, so
    same-instant events pop in the order they were scheduled — the whole
    simulation is a pure function of the seeds.
    """

    def __init__(self):
        self.now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, str, dict]] = []

    def schedule(self, at: float, kind: str, data: dict) -> None:
        """Enqueue ``kind`` at virtual time ``at`` (>= now)."""
        if at < self.now:
            raise ValueError(f"cannot schedule into the past ({at} < {self.now})")
        heapq.heappush(self._heap, (float(at), self._seq, kind, data))
        self._seq += 1

    def pop(self) -> tuple[str, dict]:
        """Advance to and return the next event."""
        at, _seq, kind, data = heapq.heappop(self._heap)
        self.now = at
        return kind, data

    def __len__(self) -> int:
        return len(self._heap)

    # ------------------------------------------------- checkpoint support
    def snapshot(self) -> dict:
        """JSON-able clock state (heap entries carry only plain data)."""
        return {"now": self.now, "seq": self._seq,
                "heap": [[at, seq, kind, data]
                         for at, seq, kind, data in sorted(self._heap)]}

    @classmethod
    def restore(cls, payload: dict) -> "VirtualClock":
        clock = cls()
        clock.now = float(payload["now"])
        clock._seq = int(payload["seq"])
        clock._heap = [(float(at), int(seq), str(kind), dict(data))
                       for at, seq, kind, data in payload["heap"]]
        heapq.heapify(clock._heap)
        return clock


@dataclass
class _Job:
    """One dispatched training job and its flight bookkeeping."""

    job_id: int
    client_id: int
    dispatch_step: int          # server step at dispatch (staleness origin)
    dispatch_time: float
    duration: float
    crashed: bool
    update: Any = None          # dropped after commit to bound memory
    train_loss: float = float("nan")
    fingerprint: int | None = None   # CRC32 of the upload payload
    up_bytes: int | None = None
    accepted: bool = False


@dataclass
class StepResult:
    """Metrics of one committed global step (the async RoundResult)."""

    step: int
    time: float                 # virtual time of the commit
    n_updates: int
    mean_staleness: float
    max_staleness: int
    train_loss: float
    val_acc: float = float("nan")
    deadline_commit: bool = False
    partial: bool = False       # end-of-run flush below buffer_k


class AsyncFederatedRunner:
    """Drive a :class:`FederatedAlgorithm`'s hooks from an event heap.

    The runner owns the *protocol* (arrivals, buffering, staleness,
    admission control); the wrapped algorithm keeps owning the *math*
    (``download_payload`` / ``local_update`` / ``upload_payload`` /
    ``aggregate`` / ``aggregate_weighted``) plus the shared
    infrastructure — its :class:`~repro.fl.comm.CommLedger` (downlink
    charged at dispatch, uplink at delivery, both keyed by the dispatch
    step so async accounting lines up with sync rounds), its
    :class:`~repro.fl.wire.BroadcastCache`, and its clients.
    """

    def __init__(self, algorithm: FederatedAlgorithm, profile: AsyncProfile,
                 config: AsyncConfig | None = None, update_store=None):
        self.algo = algorithm
        self.profile = profile
        self.config = config or AsyncConfig()
        self.clock = VirtualClock()
        self._clients = {c.client_id: c for c in algorithm.clients}
        self.jobs: dict[int, _Job] = {}
        self._next_job = 0
        self._client_jobs: dict[int, int] = {}   # cid -> jobs dispatched
        self.inflight: set[int] = set()
        self.queue: list[int] = []               # FIFO of waiting client ids
        self.buffer: list[int] = []              # accepted, uncommitted jobs
        # (cid, crc) -> job; FIFO-bounded at config.dedup_capacity so long
        # runs keep O(capacity) memory (DESIGN.md §13)
        self._fp_registry: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.dedup_evictions = 0
        # Optional spill-to-disk store for in-flight updates: dispatched
        # jobs park their update blobs here (losslessly framed) and the
        # commit streams them through the algorithm's fold — server memory
        # stays O(model) regardless of max_inflight (DESIGN.md §13).
        self._store = update_store
        self.server_step = 0
        self._commit_epoch = 0
        self.stats = FaultStats()
        self.step_results: list[StepResult] = []
        self.stalled = False
        self.counters = {"dispatched": 0, "accepted": 0, "committed": 0,
                         "deduped": 0, "rejected": 0, "queued": 0,
                         "crashed": 0, "churned": 0, "deadline_commits": 0}
        self._started = False

    # ------------------------------------------------------------- events
    def _start(self) -> None:
        """Schedule every client's first arrival (once)."""
        if self._started:
            return
        self._started = True
        for client in self.algo.clients:   # deterministic: client order
            self.clock.schedule(self.profile.first_arrival(client.client_id),
                                "arrive", {"cid": client.client_id})

    def _process_one(self) -> None:
        """Pop and handle the next event."""
        kind, data = self.clock.pop()
        if kind == "arrive":
            self._on_arrive(data["cid"])
        elif kind == "upload":
            self._on_delivery(data["job"], duplicate=False)
        elif kind == "dup":
            self._on_delivery(data["job"], duplicate=True)
        elif kind == "crash":
            self._on_crash(data["job"])
        elif kind == "deadline":
            self._on_deadline(data["epoch"])
        else:  # pragma: no cover - schedule() only emits the kinds above
            raise ValueError(f"unknown event kind {kind!r}")

    # ----------------------------------------------- dispatch / admission
    def _on_arrive(self, cid: int) -> None:
        """Admission control: dispatch, queue, or reject with backoff."""
        if len(self.inflight) >= self.config.max_inflight:
            if len(self.queue) < self.config.max_queue:
                self.queue.append(cid)
                self._bump("queued")
            else:
                # Backpressure: deterministic backoff, then try again.
                self._bump("rejected")
                backoff = max(self.profile.rejoin_delay,
                              self.profile.mean_latency)
                self.clock.schedule(self.clock.now + backoff, "arrive",
                                    {"cid": cid})
            return
        self._dispatch(cid)

    def _dispatch(self, cid: int) -> None:
        """Admit a client: download, train against the current global state,
        and put the job in flight.  Crash fate is drawn up front (seeded by
        job, so order-independent); a doomed job skips training entirely —
        equivalent to the sync loop's train-then-rollback, since every
        training draw is keyed and client state is only mutated by the
        training that here never happens."""
        tracer = get_tracer()
        algo = self.algo
        client = self._clients[cid]
        job_id = self._next_job
        self._next_job += 1
        round_for_client = self._client_jobs.get(cid, 0)
        self._client_jobs[cid] = round_for_client + 1
        epochs = algo.epochs_for(client, round_for_client)
        duration = self.profile.duration(cid, job_id, epochs)
        crashed = self.profile.crashes(cid, job_id)
        job = _Job(job_id=job_id, client_id=cid,
                   dispatch_step=self.server_step,
                   dispatch_time=self.clock.now, duration=duration,
                   crashed=crashed)
        with tracer.span("dispatch", step=self.server_step, client=cid,
                         job=job_id) as span:
            down = algo.download_payload(client)
            down_bytes = payload_nbytes(down)
            span.set(bytes=down_bytes, crashed=crashed)
            if tracer.enabled:
                # Traced codec parity, exactly like the sync fault-free
                # path: frame the (client-invariant) downlink once per
                # step through the broadcast cache and decode zero-copy,
                # so traced codec byte totals equal the ledger's.
                blob = algo._broadcast.encode(
                    down, token=("async", self.server_step), channel="down",
                    variant=algo._bcast_variant)
                deserialize_state(blob, copy=False)
            algo.ledger.record_down(self.server_step, cid, down_bytes)
            if not crashed:
                job.update = algo.local_update(client, round_for_client)
                # Quantized uplink (DESIGN.md §16): encode once at
                # training time, before any spill — the stashed wire
                # dict is what fingerprints, byte charges, and (via the
                # dequantized update tensors) buffered commits all see,
                # so duplicate deliveries dedup against identical bytes.
                job.update = algo.quantize_update(client, job.update,
                                                  round_for_client)
                job.train_loss = algo.update_train_loss(job.update)
                if self._store is not None:
                    from repro.fl.comm import encode_update
                    self._store.put(f"job/{job_id}",
                                    encode_update(job.update))
                    job.update = None    # lives on disk until commit
        self.jobs[job_id] = job
        self.inflight.add(job_id)
        self._bump("dispatched")
        get_registry().gauge("async.inflight").set(len(self.inflight))
        if crashed:
            # Mid-flight death surfaces partway through the job's window.
            self.clock.schedule(self.clock.now + 0.5 * duration, "crash",
                                {"job": job_id})
            return
        self.clock.schedule(self.clock.now + duration, "upload",
                            {"job": job_id})
        dup_lag = self.profile.duplicate_lag(cid, job_id)
        if dup_lag is not None:
            self.clock.schedule(self.clock.now + duration + dup_lag, "dup",
                                {"job": job_id})

    def _drain_queue(self) -> None:
        """Dispatch waiting clients while in-flight slots are free."""
        while self.queue and len(self.inflight) < self.config.max_inflight:
            self._dispatch(self.queue.pop(0))

    # ------------------------------------------------------------ uploads
    def _on_delivery(self, job_id: int, duplicate: bool) -> None:
        """An upload (or a duplicated delivery of one) reaches the server."""
        job = self.jobs[job_id]
        cid = job.client_id
        if job.accepted:
            # A later delivery of an already-accepted job is a duplicate
            # regardless of the fingerprint registry — which is bounded,
            # so its entry may have been FIFO-evicted by now.
            self._bump("deduped")
            return
        if job.fingerprint is None:
            payload = self.algo.wire_payload(self._job_update(job))
            job.fingerprint = state_fingerprint(payload)
            job.up_bytes = payload_nbytes(payload)
        else:
            payload = None
        key = (cid, job.fingerprint)
        if self._fp_registry.get(key) is not None:
            # Wire-level dedup: an upload whose content fingerprint was
            # already accepted from this client (duplicate or late
            # retransmission) is dropped before any accounting.
            self._bump("deduped")
            if self._store is not None and self._fp_registry[key] != job_id:
                # A *different* job won the fingerprint — this one will
                # never commit, so its spilled update is garbage now.  A
                # duplicate delivery of the accepted job itself keeps its
                # entry (still needed at commit).
                self._store.delete(f"job/{job_id}")
            return
        self._fp_registry[key] = job_id
        while len(self._fp_registry) > self.config.dedup_capacity:
            self._fp_registry.popitem(last=False)
            self.dedup_evictions += 1
            get_registry().counter("async.dedup_evictions").inc()
        job.accepted = True
        self.inflight.discard(job_id)
        tracer = get_tracer()
        with tracer.span("buffer", step=self.server_step, client=cid,
                         job=job_id) as span:
            if tracer.enabled:
                if payload is None:
                    payload = self.algo.wire_payload(self._job_update(job))
                codec_validate(payload, owner=self.algo)
            self.algo.ledger.record_up(job.dispatch_step, cid, job.up_bytes)
            self.stats.record_delivery(cid)
            self.buffer.append(job_id)
            self._bump("accepted")
            span.set(bytes=job.up_bytes, depth=len(self.buffer),
                     staleness=self.server_step - job.dispatch_step,
                     duplicate=duplicate)
        get_registry().gauge("async.buffer_depth").set(len(self.buffer))
        get_registry().gauge("async.inflight").set(len(self.inflight))
        if (self.config.commit_deadline is not None
                and len(self.buffer) == 1):
            self.clock.schedule(self.clock.now + self.config.commit_deadline,
                                "deadline", {"epoch": self._commit_epoch})
        if len(self.buffer) >= self.config.buffer_k:
            self._commit()
        self._schedule_rejoin(cid, job_id)
        self._drain_queue()

    def _schedule_rejoin(self, cid: int, job_id: int) -> None:
        """Schedule the client's next arrival (churn draws its absence)."""
        idle, churned = self.profile.rejoin_after(cid, job_id)
        if churned:
            self._bump("churned")
        self.clock.schedule(self.clock.now + idle, "arrive", {"cid": cid})

    def _on_crash(self, job_id: int) -> None:
        """A mid-flight crash surfaces: the update is lost, the client
        restarts and re-arrives after the profile's rejoin delay."""
        job = self.jobs[job_id]
        self.inflight.discard(job_id)
        self._bump("crashed")
        failure = ClientCrashed(job.client_id, job.dispatch_step,
                                f"crashed mid-flight (job {job_id})")
        self.stats.record_attempt_failure(failure)
        self.stats.record_failure(failure)
        get_registry().gauge("async.inflight").set(len(self.inflight))
        self.clock.schedule(self.clock.now + self.profile.rejoin_delay,
                            "arrive", {"cid": job.client_id})
        self._drain_queue()

    def _on_deadline(self, epoch: int) -> None:
        """Deadline commit — idempotent: stale epochs are no-ops."""
        if epoch != self._commit_epoch or not self.buffer:
            return
        self._bump("deadline_commits")
        self._commit(deadline=True)
        self._drain_queue()

    # ------------------------------------------------------------- commit
    def _job_update(self, job: _Job) -> Any:
        """The job's update, wherever it lives (memory or spill store)."""
        if job.update is not None:
            return job.update
        if self._store is not None:
            blob = self._store.get(f"job/{job.job_id}")
            if blob is not None:
                from repro.fl.comm import decode_update
                return decode_update(blob)
        return None

    def _fold_commit(self, jobs: list[_Job], weights: list[float]) -> None:
        """Commit by streaming spilled updates through the algorithm's
        fold — one update in memory at a time, bitwise-equal to
        ``aggregate_weighted`` over the materialized list."""
        from repro.fl.scale.fold import UpdateSpill
        use_weighted = not all(w == 1.0 for w in weights)
        spill = UpdateSpill(os.path.join(
            self._store.root, "spills", f"commit_{self._commit_epoch}.spill"))
        fold = self.algo.make_fold(spill, weighted=use_weighted)
        for job, w in zip(jobs, weights):
            if use_weighted:
                fold.add(self._job_update(job), w)
            else:
                fold.add(self._job_update(job))
        fold.finalize(self.server_step)
        spill.unlink()

    def _commit(self, deadline: bool = False, partial: bool = False) -> None:
        """Fold the buffer into the global state as one server step."""
        assert self.buffer, "commit with an empty buffer"
        cfg = self.config
        order = sorted(self.buffer,
                       key=lambda jid: (self.jobs[jid].dispatch_step, jid))
        jobs = [self.jobs[jid] for jid in order]
        staleness = [self.server_step - j.dispatch_step for j in jobs]
        weights = [staleness_weight(s, cfg.staleness_alpha)
                   for s in staleness]
        tracer = get_tracer()
        metrics = get_registry()
        with tracer.span("commit", step=self.server_step,
                         n_updates=len(jobs), deadline=deadline) as span:
            if self._store is not None:
                self._fold_commit(jobs, weights)
            else:
                updates = [j.update for j in jobs]
                self.algo.aggregate_weighted(updates, weights,
                                             self.server_step)
            span.set(max_staleness=max(staleness),
                     mean_weight=float(np.mean(weights)))
        hist = metrics.histogram("async.staleness", bounds=STALENESS_BOUNDS)
        for s in staleness:
            hist.observe(float(s))
        metrics.counter("async.commits").inc()
        metrics.counter("async.committed_updates").inc(len(jobs))
        metrics.gauge("async.buffer_depth").set(0)
        finite = [j.train_loss for j in jobs if math.isfinite(j.train_loss)]
        result = StepResult(
            step=self.server_step, time=self.clock.now, n_updates=len(jobs),
            mean_staleness=float(np.mean(staleness)),
            max_staleness=int(max(staleness)),
            train_loss=float(np.mean(finite)) if finite else float("nan"),
            deadline_commit=deadline, partial=partial)
        self.buffer.clear()
        for job in jobs:
            job.update = None        # committed: drop the payload reference
            if self._store is not None:
                self._store.delete(f"job/{job.job_id}")
        self.counters["committed"] += len(jobs)
        self.server_step += 1
        self._commit_epoch += 1      # invalidates any armed deadline
        self.algo.rounds_completed = self.server_step
        if cfg.eval_every and self.server_step % cfg.eval_every == 0:
            result.val_acc = self.algo.evaluate_all()
        self.step_results.append(result)

    def _bump(self, name: str) -> None:
        self.counters[name] += 1
        get_registry().counter(f"async.{name}").inc()

    # --------------------------------------------------------------- run
    def run(self, steps: int, max_events: int | None = None) -> list[StepResult]:
        """Advance the simulation by ``steps`` committed global steps.

        ``max_events`` bounds total event processing (default: generous,
        scaled to the target) so degenerate profiles — e.g. every job
        crashing — terminate instead of spinning the virtual clock
        forever; hitting the bound (or draining the heap) short of the
        target sets ``stalled``.  With ``flush_final`` a partial buffer
        is committed at the end so accepted work is never silently
        discarded.  Returns the :class:`StepResult` list of *this* call.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self._start()
        target = self.server_step + steps
        if max_events is None:
            max_events = max(10_000, 500 * steps * len(self._clients))
        first = len(self.step_results)
        events = 0
        while self.server_step < target and len(self.clock) \
                and events < max_events:
            self._process_one()
            events += 1
        if self.server_step < target:
            if self.config.flush_final and self.buffer:
                self._commit(partial=True)
            self.stalled = True
        return self.step_results[first:]

    def pump(self, n_events: int) -> int:
        """Process up to ``n_events`` events (checkpoint/test middles);
        returns how many were actually processed."""
        self._start()
        done = 0
        while done < n_events and len(self.clock):
            self._process_one()
            done += 1
        return done

    def finalize(self) -> None:
        """Fold end-of-run drop accounting into the shared fault stats:
        clients that never delivered any update count once as dropped."""
        self.stats.finalize_drops()
        self.algo.fault_stats.merge(self.stats)
        self.stats = FaultStats()

    # ------------------------------------------------------------ summary
    def summary(self) -> dict:
        """JSON-able run summary (bench + experiment reporting)."""
        hist = get_registry().histogram("async.staleness",
                                        bounds=STALENESS_BOUNDS)
        return {
            "server_steps": self.server_step,
            "virtual_time": self.clock.now,
            "stalled": self.stalled,
            "counters": dict(self.counters),
            "staleness_mean": None if hist.count == 0 else hist.mean,
            "staleness_max": None if hist.count == 0 else hist.max,
            "ledger_bytes": self.algo.ledger.total_bytes(),
        }
