"""Pluggable round-execution engines: serial and process-parallel.

SPATL's round loop is embarrassingly parallel across clients — each
sampled client independently downloads the global state, trains locally,
and uploads its salient parameters — yet the original
``FederatedAlgorithm._collect_updates`` ran clients strictly
sequentially, capping round wall-time at one core.  This module supplies
the executor abstraction behind that loop (DESIGN.md §9):

- :class:`SerialExecutor` — the default; replicates the original
  in-process loop exactly (same objects, same call order, zero overhead);
- :class:`ProcessPoolRoundExecutor` — fans the per-client
  download → train → upload exchange over a ``ProcessPoolExecutor``
  whose workers persist for the executor's lifetime; with ``shm=True``
  the per-round broadcast state travels through a
  :class:`SharedMemoryTransport` segment that workers deserialize
  zero-copy (``wire.deserialize(copy=False)``) instead of through the
  task-queue pickle stream.

(:class:`~repro.fl.vectorized.VectorizedRoundExecutor`, the third
engine, lives in its own module; ``make_executor`` builds any of them.)

Parallel runs are **seed- and byte-identical** to serial runs because

1. every random draw is keyed by ``(seed, purpose, round, client, ...)``
   through ``SeedSequence`` trees, so draws are order-independent;
2. state crossing the process boundary goes through lossless codecs: the
   global sync state and the update objects through the very wire codec
   (:mod:`repro.fl.comm`) the simulated network uses, per-client extras
   through pickle — and the sync state is framed once per round by the
   server's :class:`~repro.fl.wire.BroadcastCache` and shipped once per
   *worker* (barrier-gated preload), not once per client;
3. the parent commits results — client ``local_state``, policy state,
   ledger traffic, fault stats, metrics, trace spans, and finally the
   update itself — in deterministic cohort order, regardless of which
   worker finished first.

A worker process that *dies* (segfault, OOM-kill) surfaces as
:class:`~repro.fl.resilience.WorkerCrashed`: it propagates when no fault
model is configured, otherwise the client is recorded as dropped and the
pool is rebuilt for the next collect.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import pickle
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Sequence

from repro.fl.comm import (CommLedger, decode_update, deserialize_state,
                           encode_update)
from repro.fl.resilience import ClientFailure, FaultStats, WorkerCrashed
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.trace import NullTracer, Tracer, get_tracer, set_tracer


class RoundExecutor:
    """Strategy interface for gathering one round's client updates.

    ``collect`` receives the algorithm, the sampled cohort, and the
    round's fault bookkeeping, and must return ``(updates, losses)``
    exactly as the original sequential loop would have — including all
    side effects on client state, the ledger, metrics, and traces.
    """

    def collect(self, algorithm: Any, selected: Sequence[Any],
                round_idx: int, salt: int,
                stats: FaultStats) -> tuple[list[Any], list[float]]:
        """Run the cohort's exchanges; return surviving updates + losses."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (worker pools). Idempotent no-op here."""


class SerialExecutor(RoundExecutor):
    """In-process executor: the original sequential loop, verbatim.

    This is the default and the fallback: no serialization, no extra
    processes, and — because it calls ``_client_exchange`` on the very
    same objects — guaranteed-identical behaviour to the pre-executor
    code path.  It is also the faster choice for small models, where
    process fan-out overhead (fork + state sync + update decode) exceeds
    per-client training time; see DESIGN.md §9 for guidance.
    """

    def collect(self, algorithm, selected, round_idx, salt, stats):
        """Exchange with each client in cohort order, in this process."""
        updates, losses = [], []
        for client in selected:
            try:
                update = algorithm._client_exchange(client, round_idx, salt,
                                                    stats)
            except ClientFailure as failure:
                stats.record_failure(failure)
                continue
            stats.record_delivery(client.client_id)
            updates.append(update)
            losses.append(algorithm.update_train_loss(update))
        return updates, losses


@contextlib.contextmanager
def _untraced():
    """Silence the tracer for executor plumbing.

    The sync-blob and update-framing codec calls are infrastructure, not
    simulated network traffic: tracing them would add ``serialize`` /
    ``deserialize`` spans a serial run does not have, and — because codec
    spans carry byte counts — break the invariant that traced codec byte
    totals equal the :class:`CommLedger` totals.
    """
    previous = set_tracer(NullTracer())
    try:
        yield
    finally:
        set_tracer(previous)


# ---------------------------------------------------------------- worker
# Module-level state installed once per worker process by the pool
# initializer, then reused across tasks: the unpickled algorithm replica,
# its clients by id, and the version of the last-applied sync state.

_WORKER_ALGO: Any = None
_WORKER_CLIENTS: dict[int, Any] = {}
_WORKER_SYNC_VERSION: int = -1
_WORKER_BARRIER: Any = None   # shared barrier for sync-blob preloads
_WORKER_SHM: dict[str, Any] = {}   # attached shared-memory segments by name


def _pickle_algorithm(algorithm: Any) -> bytes:
    """Pickle an algorithm for worker replicas.

    ``model_fn`` is typically a closure (unpicklable) and the executor
    must not recurse into itself, so both are detached for the dump and
    restored after; workers never call either — models already exist on
    the replica and workers only run ``_client_exchange``.
    """
    saved = {}
    try:
        for attr in ("model_fn", "executor"):
            saved[attr] = getattr(algorithm, attr)
            setattr(algorithm, attr, None)
        return pickle.dumps(algorithm)
    finally:
        for attr, value in saved.items():
            setattr(algorithm, attr, value)


def _worker_init(algo_blob: bytes, barrier: Any = None) -> None:
    """Pool initializer: install the algorithm replica in this process."""
    global _WORKER_ALGO, _WORKER_CLIENTS, _WORKER_SYNC_VERSION, _WORKER_BARRIER
    _WORKER_ALGO = pickle.loads(algo_blob)
    _WORKER_CLIENTS = {c.client_id: c for c in _WORKER_ALGO.clients}
    _WORKER_SYNC_VERSION = -1
    _WORKER_BARRIER = barrier


def _apply_sync(version: int, blob: bytes) -> None:
    """Decode and install one sync blob on this worker's replica."""
    global _WORKER_SYNC_VERSION
    with _untraced():
        _WORKER_ALGO.load_worker_sync_state(deserialize_state(blob))
    _WORKER_SYNC_VERSION = version


def _preload_sync(version: int, blob: bytes, timeout: float) -> bool:
    """Install the round's sync blob, holding this worker at the barrier.

    The parent submits exactly ``workers`` of these per collect; the
    shared barrier keeps each worker parked until *every* worker has
    taken (and applied) one, so no worker can consume two preloads and
    leave a sibling stale.  The large sync state therefore crosses the
    process boundary once per worker per round instead of once per
    client.  Returns False (instead of raising) when the barrier breaks
    — e.g. a sibling died — so the parent can fall back to per-task
    blobs for the round.
    """
    _apply_sync(version, blob)
    try:
        _WORKER_BARRIER.wait(timeout)
    except threading.BrokenBarrierError:
        return False
    return True


def _attach_shm(name: str) -> Any:
    """This worker's mapping of the parent's segment ``name``, cached.

    A new name means the parent outgrew and replaced its segment, so any
    previously cached mapping is stale: close it (best-effort — live
    zero-copy views pin the old mapping until they die) and attach the
    new one.  Pool workers share the parent's resource-tracker process
    (its fd travels through both fork and spawn), so the attach's
    registration is a no-op on the already-tracked name and needs no
    unregister — unregistering here would strip the *parent's* entry and
    leak the segment if the job dies before ``unlink``.
    """
    shm = _WORKER_SHM.get(name)
    if shm is not None:
        return shm
    for stale in list(_WORKER_SHM):
        old = _WORKER_SHM.pop(stale)
        try:
            old.close()
        except BufferError:
            pass
    shm = shared_memory.SharedMemory(name=name)
    _WORKER_SHM[name] = shm
    return shm


def _preload_sync_shm(version: int, name: str, nbytes: int,
                      timeout: float) -> bool:
    """Install the round's sync state straight from shared memory.

    Like :func:`_preload_sync`, but instead of carrying the blob in the
    task pickle the worker attaches the parent's shared-memory segment
    and deserializes **zero-copy** (``copy=False``): arrays are read-only
    views over the segment, so the large global state is never copied
    into the task queue nor materialised per worker.  Any failure is
    swallowed *after* meeting the barrier — a worker that bailed early
    would park its siblings for the full timeout — and reported as
    False so the parent falls back to per-task blobs for the round.
    """
    global _WORKER_SYNC_VERSION
    ok = True
    try:
        shm = _attach_shm(name)
        with _untraced():
            state = deserialize_state(shm.buf[:nbytes], copy=False)
            _WORKER_ALGO.load_worker_sync_state(state)
        _WORKER_SYNC_VERSION = version
    except Exception:
        ok = False
    try:
        _WORKER_BARRIER.wait(timeout)
    except threading.BrokenBarrierError:
        return False
    return ok


@dataclass
class _ClientTask:
    """Everything a worker needs to run one client's exchange."""

    client_id: int
    round_idx: int
    salt: int
    sync_version: int        # bumped per collect; workers re-sync on change
    sync_blob: bytes | None  # encoded worker_sync_state; None when the
                             # blob was already distributed via _preload_sync
    bcast_token: int         # server round token for the worker's own
                             # BroadcastCache / FaultyTransport
    local_state_blob: bytes  # pickled client.local_state
    context_blob: bytes      # pickled algorithm.client_context(client)
    traced: bool             # parent tracer enabled → record worker spans


@dataclass
class _ClientOutcome:
    """Everything the parent must commit, in cohort order."""

    client_id: int
    update_blob: bytes | None         # encode_update(update); None on failure
    failure: ClientFailure | None
    train_loss: float
    local_state_blob: bytes           # pickled post-exchange local_state
    result_context_blob: bytes        # pickled client_result_context(client)
    stats: FaultStats                 # attempt-level counters from the worker
    ledger: CommLedger                # this task's traffic (merged by parent)
    metrics: MetricsRegistry          # this task's instruments (merged)
    trace_records: list = field(default_factory=list)


def _run_client_task(task: _ClientTask) -> _ClientOutcome:
    """Execute one client exchange inside a worker process.

    The worker re-points the replica's ledger/metrics/tracer at fresh
    per-task instances so nothing double-counts: the parent merges each
    outcome exactly once, in cohort order.  The sync blob is applied only
    when its version changed, so the (large) global state deserializes
    once per worker per round, not once per client.
    """
    algo = _WORKER_ALGO
    tracer = Tracer() if task.traced else NullTracer()
    set_tracer(tracer)
    if task.sync_version != _WORKER_SYNC_VERSION:
        if task.sync_blob is None:
            raise RuntimeError(
                f"worker missed sync preload for version {task.sync_version} "
                f"(has {_WORKER_SYNC_VERSION}) and the task carries no blob")
        _apply_sync(task.sync_version, task.sync_blob)
    # Round token for this replica's broadcast cache: the worker's own
    # FaultyTransport / traced downlink frame the (client-invariant)
    # downlink once per round under this token instead of once per client.
    algo._bcast_gen = task.bcast_token
    if algo.transport is not None:
        algo.transport.token = task.bcast_token
    client = _WORKER_CLIENTS[task.client_id]
    client.local_state = pickle.loads(task.local_state_blob)
    context = pickle.loads(task.context_blob)
    if context is not None:
        algo.apply_client_context(client, context)

    ledger = CommLedger()
    algo.ledger = ledger
    if algo.transport is not None:
        algo.transport.ledger = ledger
    registry = MetricsRegistry()
    set_registry(registry)

    stats = FaultStats()
    failure: ClientFailure | None = None
    update_blob: bytes | None = None
    train_loss = float("nan")
    try:
        update = algo._client_exchange(client, task.round_idx, task.salt,
                                       stats)
    except ClientFailure as err:
        failure = err
    else:
        train_loss = algo.update_train_loss(update)
        with _untraced():
            update_blob = encode_update(update)
    return _ClientOutcome(
        client_id=task.client_id,
        update_blob=update_blob,
        failure=failure,
        train_loss=train_loss,
        local_state_blob=pickle.dumps(client.local_state),
        result_context_blob=pickle.dumps(algo.client_result_context(client)),
        stats=stats,
        ledger=ledger,
        metrics=registry,
        trace_records=tracer.records() if task.traced else [],
    )


# ---------------------------------------------------------------- parent
class SharedMemoryTransport:
    """Parent-side publisher of round sync blobs into shared memory.

    One segment, reused across rounds: ``publish`` writes the blob in
    place when it fits, or retires the segment (unlink — existing worker
    mappings stay valid until they detach) and creates a larger one
    under a fresh name, which is how workers detect staleness.  Workers
    attach by the returned ``(name, nbytes)`` and deserialize zero-copy,
    so the broadcast state crosses the process boundary without ever
    entering the task-queue pickle stream.
    """

    def __init__(self):
        # The live segment is kept in a one-slot holder shared with a
        # ``weakref.finalize`` callback, so a transport dropped without
        # ``close()`` (an executor leaked by a caller that never calls
        # ``algo.close()``) still unlinks its segment at GC instead of
        # stranding it until the resource tracker's shutdown sweep.
        self._holder: dict[str, shared_memory.SharedMemory | None] = \
            {"shm": None}
        self._finalizer = weakref.finalize(self, self._unlink, self._holder)

    @property
    def _shm(self) -> shared_memory.SharedMemory | None:
        return self._holder["shm"]

    @property
    def name(self) -> str | None:
        """Current segment name (None before the first publish)."""
        shm = self._shm
        return shm.name if shm is not None else None

    def publish(self, blob: bytes) -> tuple[str, int]:
        """Write ``blob`` into shared memory; return ``(name, nbytes)``."""
        n = len(blob)
        if self._shm is None or self._shm.size < n:
            self.close()
            self._holder["shm"] = shared_memory.SharedMemory(create=True,
                                                             size=max(n, 1))
        shm = self._shm
        shm.buf[:n] = blob
        return shm.name, n

    @staticmethod
    def _unlink(holder: dict) -> None:
        shm = holder.get("shm")
        holder["shm"] = None
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def close(self) -> None:
        """Unmap and unlink the segment. Idempotent."""
        self._unlink(self._holder)


class ProcessPoolRoundExecutor(RoundExecutor):
    """Fan per-client exchanges over a pool of worker processes.

    The pool is built lazily on first ``collect`` for a given algorithm
    (each worker unpickles one algorithm replica in its initializer) and
    reused across rounds.  Per-round server state is framed once through
    the algorithm's :class:`~repro.fl.wire.BroadcastCache`
    (``encoded_sync_state``) and — with ``broadcast=True``, the default —
    distributed once per *worker* via barrier-gated preload tasks, so
    client tasks stay small; with ``broadcast=False`` (and automatically
    as a per-round fallback when a preload fails) the blob rides along in
    every task, the pre-cache behaviour.  Either way a worker applies the
    blob at most once per round.  Results are committed strictly in
    cohort order — see the module docstring for the determinism argument.

    ``mp_context`` defaults to ``fork`` where available (cheap replica
    setup via copy-on-write; also required for algorithm classes defined
    in non-importable modules) and falls back to ``spawn``.
    """

    # Deadline for workers meeting at the preload barrier; generous —
    # it only has to cover worker process startup, never training.
    _SYNC_BARRIER_TIMEOUT = 120.0

    def __init__(self, workers: int, mp_context: Any = None,
                 broadcast: bool = True, shm: bool = False):
        if workers < 2:
            raise ValueError("ProcessPoolRoundExecutor needs >= 2 workers; "
                             "use SerialExecutor (or make_executor) instead")
        self.workers = workers
        self.broadcast = broadcast
        self.shm = shm
        if mp_context is None:
            method = ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")
            mp_context = mp.get_context(method)
        elif isinstance(mp_context, str):
            mp_context = mp.get_context(mp_context)
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        # Strong reference, compared by identity: an id()-keyed check
        # could bind a stale pool to a new algorithm allocated at a
        # recycled address after the old one was collected.
        self._pool_algorithm: Any = None
        self._barrier: Any = None
        self._sync_version = 0
        self._shm_transport = SharedMemoryTransport() if shm else None

    def _ensure_pool(self, algorithm) -> ProcessPoolExecutor:
        """The live pool for ``algorithm``, (re)building if needed.

        The pool lives for the executor's lifetime (until ``close`` or
        rebinding to a different algorithm): worker PIDs are stable
        across rounds, so replica setup — unpickling the algorithm,
        building its models — is paid once, not per round.
        """
        if self._pool is not None and self._pool_algorithm is algorithm:
            return self._pool
        self.close()
        blob = _pickle_algorithm(algorithm)
        # The barrier reaches workers through process inheritance
        # (initargs travel in the worker-spawn arguments), which works for
        # both fork and spawn contexts.
        self._barrier = self._mp_context.Barrier(self.workers)
        self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                         mp_context=self._mp_context,
                                         initializer=_worker_init,
                                         initargs=(blob, self._barrier))
        self._pool_algorithm = algorithm
        return self._pool

    def _distribute_sync(self, pool, sync_blob: bytes) -> bool:
        """Ship the round's sync blob to every worker exactly once.

        Submits ``workers`` barrier-gated preload tasks: each worker
        applies the blob, then parks at the shared barrier until all
        workers have theirs, which guarantees one preload per worker.
        With ``shm=True`` the blob travels through the
        :class:`SharedMemoryTransport` segment (workers read it
        zero-copy) and the preload task carries only ``(name, nbytes)``.
        Returns False — closing the pool if it broke — when distribution
        could not be confirmed; the caller falls back to per-task blobs.
        """
        if self._shm_transport is not None:
            try:
                name, nbytes = self._shm_transport.publish(sync_blob)
            except OSError:
                return False   # e.g. /dev/shm exhausted → per-task blobs
            futures = [pool.submit(_preload_sync_shm, self._sync_version,
                                   name, nbytes, self._SYNC_BARRIER_TIMEOUT)
                       for _ in range(self.workers)]
        else:
            futures = [pool.submit(_preload_sync, self._sync_version,
                                   sync_blob, self._SYNC_BARRIER_TIMEOUT)
                       for _ in range(self.workers)]
        try:
            ok = all([f.result() for f in futures])
        except BrokenProcessPool:
            self.close()   # caller re-ensures a healthy pool
            return False
        if not ok and self._barrier is not None:
            self._barrier.reset()   # clear the broken state for next round
        return ok

    def collect(self, algorithm, selected, round_idx, salt, stats):
        """Dispatch the cohort to workers; commit results in cohort order."""
        tracer = get_tracer()
        pool = self._ensure_pool(algorithm)
        self._sync_version += 1
        with _untraced():
            sync_blob = algorithm.encoded_sync_state()
        preloaded = False
        if self.broadcast:
            preloaded = self._distribute_sync(pool, sync_blob)
            if not preloaded:
                pool = self._ensure_pool(algorithm)   # may have been closed
        tasks = [
            _ClientTask(client_id=client.client_id, round_idx=round_idx,
                        salt=salt, sync_version=self._sync_version,
                        sync_blob=None if preloaded else sync_blob,
                        bcast_token=algorithm._bcast_gen,
                        local_state_blob=pickle.dumps(client.local_state),
                        context_blob=pickle.dumps(
                            algorithm.client_context(client)),
                        traced=tracer.enabled)
            for client in selected
        ]
        futures = [pool.submit(_run_client_task, task) for task in tasks]

        updates: list[Any] = []
        losses: list[float] = []
        registry = get_registry()
        broken = False
        for client, future in zip(selected, futures):
            try:
                outcome = future.result()
            except BrokenProcessPool:
                broken = True
                crash = WorkerCrashed(client.client_id, round_idx,
                                      "executor worker process died")
                if algorithm.fault_model is None:
                    self.close()
                    raise crash from None
                stats.record_failure(crash)
                continue
            # Commit everything the exchange touched *before* looking at
            # success/failure: in serial execution a client that trained
            # but failed its upload still mutated its local state and
            # charged the ledger for every attempt.
            client.local_state = pickle.loads(outcome.local_state_blob)
            result_context = pickle.loads(outcome.result_context_blob)
            if result_context is not None:
                algorithm.commit_client_result_context(client, result_context)
            algorithm.ledger.merge(outcome.ledger)
            stats.merge(outcome.stats)
            registry.merge(outcome.metrics)
            if tracer.enabled and outcome.trace_records:
                tracer.absorb(outcome.trace_records, base_depth=tracer.depth)
            if outcome.failure is not None:
                stats.record_failure(outcome.failure)
                continue
            stats.record_delivery(client.client_id)
            with _untraced():
                # Aggregation only reads updates, so decode them as
                # zero-copy views over the update blob (kept alive by the
                # views' buffer references) instead of per-array copies.
                updates.append(decode_update(outcome.update_blob,
                                             copy=False))
            losses.append(outcome.train_loss)
        if broken:
            self.close()   # next collect rebuilds a healthy pool
        return updates, losses

    def close(self) -> None:
        """Shut the pool down (cancelling queued tasks). Idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_algorithm = None
            self._barrier = None
        if self._shm_transport is not None:
            self._shm_transport.close()


def make_executor(workers: int, mp_context: Any = None,
                  broadcast: bool = True, kind: str = "auto",
                  shm: bool = False) -> RoundExecutor:
    """Build a round executor (DESIGN.md §14's decision table, in code).

    ``kind`` selects the engine: ``"auto"`` (serial for ``workers <= 1``,
    process pool above), ``"serial"``, ``"process"`` (requires
    ``workers >= 2``), or ``"vectorized"`` (batched cohort training,
    falling back to a process pool when ``workers >= 2`` — serial
    otherwise — for rounds outside the cohort kernels' envelope).
    ``shm=True`` routes the process pool's broadcast state through a
    :class:`SharedMemoryTransport` segment; it therefore needs a process
    pool to exist (``workers >= 2``) and raises rather than being
    silently ignored without one.
    """
    if shm and (kind == "serial" or workers <= 1):
        raise ValueError("shm=True routes broadcasts through a process "
                         "pool's shared-memory segment and needs "
                         f"workers >= 2 (got kind={kind!r}, "
                         f"workers={workers})")
    if kind == "vectorized":
        from repro.fl.vectorized import VectorizedRoundExecutor
        fallback = (ProcessPoolRoundExecutor(workers, mp_context=mp_context,
                                             broadcast=broadcast, shm=shm)
                    if workers > 1 else None)
        return VectorizedRoundExecutor(fallback=fallback)
    if kind not in ("auto", "serial", "process"):
        raise ValueError(f"unknown executor kind {kind!r}; expected one of "
                         "auto, serial, process, vectorized")
    if kind == "serial" or (kind == "auto" and workers <= 1):
        return SerialExecutor()
    return ProcessPoolRoundExecutor(workers, mp_context=mp_context,
                                    broadcast=broadcast, shm=shm)
