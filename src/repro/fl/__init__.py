"""Federated learning framework: clients, server loop, baselines, accounting.

Implements the experimental infrastructure of the paper's §V plus the four
baselines it compares against:

- :class:`FedAvg` (McMahan et al.) — weighted full-model averaging;
- :class:`FedProx` (Li et al.) — proximal term on local updates;
- :class:`FedNova` (Wang et al.) — normalized averaging of local progress;
- :class:`Scaffold` (Karimireddy et al.) — full-model control variates.

Every byte that crosses the (simulated) network passes through
:mod:`repro.fl.comm`, so communication-cost tables are measured, not
estimated.

Beyond the baselines, the package supplies the framework plumbing every
algorithm rides on:

- :mod:`repro.fl.wire` — the fast transport core behind
  :mod:`repro.fl.comm`: zero-copy codec, arena-backed scratch
  serialization, and the per-round :class:`BroadcastCache`
  (DESIGN.md §11);
- :mod:`repro.fl.parallel` — pluggable round executors: the default
  in-process :class:`SerialExecutor` and a
  :class:`ProcessPoolRoundExecutor` that fans per-client work over worker
  processes with byte-identical results (DESIGN.md §9; CLI ``--workers``);
- :mod:`repro.fl.faults` / :mod:`repro.fl.resilience` — seeded fault
  injection and the retry/quorum recovery machinery (DESIGN.md §7);
- :mod:`repro.fl.async_runtime` — event-driven asynchronous server on a
  deterministic virtual clock: buffered (FedBuff-style) commits,
  staleness-discounted aggregation, and admission control
  (DESIGN.md §12; CLI ``--async``);
- :mod:`repro.fl.checkpoint` — bit-exact run checkpoint/resume, for both
  the synchronous loop and mid-flight async runs;
- :mod:`repro.fl.topk` — top-k delta sparsification with error feedback,
  a generic-compression comparator for SPATL's structured selection;
- :mod:`repro.fl.quant` — low-bit quantized uplink transport: stochastic
  int8/int4 codec with per-client error feedback, layered under every
  algorithm via ``quant=`` / ``--quant-bits`` (DESIGN.md §16);
- :mod:`repro.fl.sparse_init` — sparse-at-init masked uplinks:
  :class:`SalientGrads` (pre-training gradient saliency) and
  :class:`SSFL` (unified subnetwork at initialization), index-free
  sparse wire sharing;
- :mod:`repro.fl.scale` — population-scale simulation: virtual clients
  over a spill-to-disk state store, streaming fold aggregation, and
  hierarchical edge aggregators (DESIGN.md §13; CLI ``scale``).
"""

from repro.fl.comm import (CommLedger, PayloadError, payload_nbytes,
                           serialize_state, deserialize_state,
                           sparse_payload_nbytes, quantize_state,
                           dequantize_state)
from repro.fl.wire import BroadcastCache, codec_validate, state_fingerprint
from repro.fl.resilience import (ClientCrashed, ClientDropped, ClientFailure,
                                 FaultStats, RetryPolicy, StragglerTimeout,
                                 TransferCorrupted, WorkerCrashed)
from repro.fl.faults import AsyncProfile, FaultModel, FaultyTransport
from repro.fl.async_runtime import (AsyncConfig, AsyncFederatedRunner,
                                    StepResult, VirtualClock,
                                    staleness_weight)
from repro.fl.client import Client, make_federated_clients
from repro.fl.parallel import (ProcessPoolRoundExecutor, RoundExecutor,
                               SerialExecutor, make_executor)
from repro.fl.base import FederatedAlgorithm, RoundResult, sample_clients
from repro.fl.fedavg import FedAvg
from repro.fl.fedprox import FedProx
from repro.fl.fednova import FedNova
from repro.fl.scaffold import Scaffold
from repro.fl.topk import FedTopK
from repro.fl.quant import (QuantConfig, quantize_payload, dequantize_payload,
                            quant_payload_nbytes, make_quant_config)
from repro.fl.sparse_init import SalientGrads, SparseInitFL, SSFL
from repro.fl.scale import (ClientStateStore, EdgeAggregator, ScaleRunner,
                            ShardedClientFactory, StubClientFactory,
                            UpdateSpill, VirtualClient, VirtualClientPool)

ALGORITHMS = {
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "fednova": FedNova,
    "scaffold": Scaffold,
    "fedtopk": FedTopK,
    "salientgrads": SalientGrads,
    "ssfl": SSFL,
}

__all__ = [
    "CommLedger", "PayloadError", "payload_nbytes", "serialize_state",
    "deserialize_state", "sparse_payload_nbytes", "Client",
    "make_federated_clients", "FederatedAlgorithm", "RoundResult",
    "sample_clients", "FedAvg", "FedProx", "FedNova", "Scaffold", "FedTopK",
    "ALGORITHMS", "quantize_state", "dequantize_state",
    "QuantConfig", "quantize_payload", "dequantize_payload",
    "quant_payload_nbytes", "make_quant_config",
    "SparseInitFL", "SalientGrads", "SSFL",
    "FaultModel", "FaultyTransport", "RetryPolicy", "FaultStats",
    "ClientFailure", "ClientDropped", "ClientCrashed", "StragglerTimeout",
    "TransferCorrupted", "WorkerCrashed",
    "RoundExecutor", "SerialExecutor", "ProcessPoolRoundExecutor",
    "make_executor",
    "BroadcastCache", "codec_validate", "state_fingerprint",
    "AsyncProfile", "AsyncConfig", "AsyncFederatedRunner", "StepResult",
    "VirtualClock", "staleness_weight",
    "ClientStateStore", "VirtualClient", "VirtualClientPool",
    "ShardedClientFactory", "StubClientFactory", "UpdateSpill",
    "EdgeAggregator", "ScaleRunner",
]
