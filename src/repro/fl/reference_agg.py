"""Reference (pre-vectorization) salient aggregation — the oracle.

This is the original ``np.add.at`` scatter implementation of Eq. 12,
kept verbatim so the vectorized fast path in
:mod:`repro.core.aggregation` can be verified against it (the golden
tests assert **bitwise** equality: the fast path uses ``np.bincount``,
whose C accumulation loop adds weights in element order exactly like
``np.add.at``, unlike ``np.add.reduceat``'s pairwise summation).  Do
not optimise this module; its only job is to stay byte-for-byte
faithful to the pre-PR numerics.  See DESIGN.md §11.
"""

from __future__ import annotations

import numpy as np


def reference_salient_aggregate(global_weight: np.ndarray,
                                uploads: list[tuple[np.ndarray, np.ndarray]],
                                step_size: float = 1.0) -> np.ndarray:
    """Eq. 12 for one layer — original sequential-scatter implementation.

    Semantics are documented on the production entry point,
    :func:`repro.core.aggregation.salient_aggregate`.
    """
    out = np.array(global_weight, dtype=np.float64)
    acc = np.zeros_like(out)
    counts = np.zeros(out.shape[0], dtype=np.int64)
    for indices, rows in uploads:
        indices = np.asarray(indices, dtype=np.int64)
        rows = np.asarray(rows)
        if rows.shape[0] != len(indices):
            raise ValueError("upload rows/indices mismatch")
        if len(indices) and (indices.min() < 0 or indices.max() >= out.shape[0]):
            raise IndexError("salient index out of range")
        np.add.at(acc, indices, rows.astype(np.float64) - out[indices])
        np.add.at(counts, indices, 1)
    covered = counts > 0
    denom = counts[covered].reshape((-1,) + (1,) * (out.ndim - 1))
    out[covered] += step_size * acc[covered] / denom
    return out.astype(global_weight.dtype)
