"""Deterministic fault injection for federated rounds.

SPATL's target regime is heterogeneous, unreliable edge clients (§I,
§IV), so the reproduction must be exercisable under the failure modes a
real deployment sees: clients dropping offline, stragglers missing the
server deadline, processes crashing mid-training, and payloads arriving
bit-corrupted.  :class:`FaultModel` draws every fault from the repo's
seeded RNG tree (:func:`repro.utils.rng.spawn_rng`), keyed by
``(event, round, client, salt, attempt)`` — so a faulty run is exactly
reproducible, and retries/re-samples see *fresh* draws rather than
replaying the same failure forever.

:class:`FaultyTransport` routes every download/upload through the real
wire codec with per-entry CRC32 checksums (``repro.fl.comm``), flips
bits in the serialized bytes per the fault model, and re-decodes on the
receiving side.  Corruption is therefore *detected* by checksum and
structural validation, not simulated by fiat, and every transmitted
byte — including retransmissions — is charged to the
:class:`~repro.fl.comm.CommLedger`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fl.comm import (CommLedger, PayloadError, deserialize_state,
                           serialize_state)
from repro.fl.resilience import (ClientCrashed, ClientDropped,
                                 StragglerTimeout, TransferCorrupted)
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class FaultModel:
    """Seeded, per-(client, round, attempt) failure distribution.

    All probabilities are per *attempt*, so a retry re-draws — a client
    that was offline may be reachable a moment later.  ``timeout`` is the
    server-side deadline in epoch-units of simulated work: a client's
    round duration is ``local_epochs * slowdown_factor`` where the
    slowdown factor is drawn uniformly from ``[1, slowdown]`` for
    stragglers and 1 otherwise.
    """

    drop_prob: float = 0.0        # client unreachable for the attempt
    straggler_prob: float = 0.0   # client runs slow this attempt
    slowdown: float = 4.0         # max straggler slowdown factor
    timeout: float = math.inf     # server deadline (epoch-units)
    corrupt_prob: float = 0.0     # per-transfer bit-corruption probability
    crash_prob: float = 0.0       # crash mid-training (state rolled back)
    max_bit_flips: int = 4        # bits flipped per corrupted payload
    seed: int = 0

    def __post_init__(self):
        for name in ("drop_prob", "straggler_prob", "corrupt_prob",
                     "crash_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} not a probability")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        if self.max_bit_flips < 1:
            raise ValueError("max_bit_flips must be >= 1")

    # ------------------------------------------------------------ draws
    def _rng(self, event: str, round_idx: int, client_id: int, salt: int,
             attempt: int) -> np.random.Generator:
        return spawn_rng(self.seed, "fault", event, round_idx, client_id,
                         salt, attempt)

    def check_available(self, round_idx: int, client_id: int, salt: int,
                        attempt: int) -> None:
        """Raise :class:`ClientDropped` if the client is offline."""
        rng = self._rng("drop", round_idx, client_id, salt, attempt)
        if rng.random() < self.drop_prob:
            raise ClientDropped(client_id, round_idx,
                                f"unreachable (attempt {attempt})")

    def check_straggler(self, round_idx: int, client_id: int, salt: int,
                        attempt: int, local_epochs: int) -> None:
        """Raise :class:`StragglerTimeout` if simulated work misses the
        server deadline."""
        if math.isinf(self.timeout):
            return
        rng = self._rng("straggler", round_idx, client_id, salt, attempt)
        factor = 1.0
        if rng.random() < self.straggler_prob:
            factor = 1.0 + rng.random() * (self.slowdown - 1.0)
        duration = local_epochs * factor
        if duration > self.timeout:
            raise StragglerTimeout(client_id, round_idx, duration,
                                   self.timeout)

    def check_crash(self, round_idx: int, client_id: int, salt: int,
                    attempt: int) -> None:
        """Raise :class:`ClientCrashed` if the client dies mid-training."""
        rng = self._rng("crash", round_idx, client_id, salt, attempt)
        if rng.random() < self.crash_prob:
            raise ClientCrashed(client_id, round_idx,
                                f"crashed mid-training (attempt {attempt})")

    def corrupt(self, blob: bytes, round_idx: int, client_id: int,
                salt: int, attempt: int, direction: str) -> bytes:
        """Return ``blob``, possibly with 1..``max_bit_flips`` bits flipped."""
        rng = self._rng(f"corrupt.{direction}", round_idx, client_id, salt,
                        attempt)
        if rng.random() >= self.corrupt_prob or not blob:
            return blob
        buf = bytearray(blob)
        n_flips = int(rng.integers(1, self.max_bit_flips + 1))
        for pos in rng.integers(0, len(buf), size=n_flips):
            buf[pos] ^= 1 << int(rng.integers(0, 8))
        return bytes(buf)


@dataclass(frozen=True)
class AsyncProfile:
    """Seeded per-client latency/availability profile for the async runtime.

    Extends the :class:`FaultModel` failure vocabulary with the *timing*
    dimension the event-driven server (DESIGN.md §12) needs: when a
    client first arrives, how long each training job takes in virtual
    time, whether it crashes mid-flight, whether its upload is delivered
    twice, and whether it churns away after uploading.  Every draw is
    keyed by ``(seed, "async", event, client, job)`` through the repo's
    :func:`~repro.utils.rng.spawn_rng` tree, so schedules are exactly
    reproducible and independent of event-processing order.

    The synchronous-equivalence regime (``buffer_k == cohort``, zero
    staleness — see :class:`~repro.fl.async_runtime.AsyncFederatedRunner`)
    needs uniform durations: ``jitter=0`` and ``straggler_prob=0``.
    """

    mean_latency: float = 1.0     # virtual seconds per local epoch
    jitter: float = 0.0           # +/- uniform fraction on each duration
    straggler_prob: float = 0.0   # job runs slow (x uniform[1, slowdown])
    slowdown: float = 4.0         # max straggler slowdown factor
    arrival_spread: float = 0.0   # first arrivals uniform in [0, spread]
    rejoin_delay: float = 0.0     # idle time between upload and re-arrival
    churn_prob: float = 0.0       # client leaves after an upload
    absence: float = 5.0          # mean virtual time away when churned
    crash_prob: float = 0.0       # job dies mid-flight (update lost)
    duplicate_prob: float = 0.0   # upload delivered a second time
    duplicate_delay: float = 1.0  # lag of the duplicate delivery
    seed: int = 0

    def __post_init__(self):
        for name in ("straggler_prob", "churn_prob", "crash_prob",
                     "duplicate_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} not a probability")
        if self.mean_latency <= 0:
            raise ValueError("mean_latency must be > 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        for name in ("arrival_spread", "rejoin_delay", "absence",
                     "duplicate_delay"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def _rng(self, event: str, client_id: int, job_id: int) -> np.random.Generator:
        return spawn_rng(self.seed, "async", event, client_id, job_id)

    def first_arrival(self, client_id: int) -> float:
        """Virtual time of the client's initial arrival."""
        if self.arrival_spread == 0.0:
            return 0.0
        return float(self._rng("arrive", client_id, 0).random()
                     * self.arrival_spread)

    def duration(self, client_id: int, job_id: int, local_epochs: int) -> float:
        """Virtual duration of one training-plus-upload job."""
        base = local_epochs * self.mean_latency
        rng = self._rng("duration", client_id, job_id)
        if self.jitter:
            base *= 1.0 + (2.0 * rng.random() - 1.0) * self.jitter
        if self.straggler_prob and rng.random() < self.straggler_prob:
            base *= 1.0 + rng.random() * (self.slowdown - 1.0)
        return float(base)

    def crashes(self, client_id: int, job_id: int) -> bool:
        """Whether this job dies mid-flight (its update never arrives)."""
        if self.crash_prob == 0.0:
            return False
        return bool(self._rng("crash", client_id, job_id).random()
                    < self.crash_prob)

    def duplicate_lag(self, client_id: int, job_id: int) -> float | None:
        """Extra delivery lag when the upload is duplicated, else None."""
        if self.duplicate_prob == 0.0:
            return None
        rng = self._rng("duplicate", client_id, job_id)
        if rng.random() >= self.duplicate_prob:
            return None
        return float(self.duplicate_delay * (0.5 + rng.random()))

    def rejoin_after(self, client_id: int, job_id: int) -> tuple[float, bool]:
        """(idle time before the next arrival, whether the client churned)."""
        if self.churn_prob:
            rng = self._rng("churn", client_id, job_id)
            if rng.random() < self.churn_prob:
                return float(self.absence * (0.5 + rng.random())), True
        return float(self.rejoin_delay), False


class FaultyTransport:
    """Wire transport that serializes, maybe-corrupts, and re-decodes.

    Both directions go through the checksummed wire codec; the receiving
    side runs the validating decoder, so every corruption surfaces as
    :class:`TransferCorrupted` (never a silent acceptance).  Bytes are
    charged to the ledger when they are *sent*, i.e. corrupted and
    retried transfers cost real (simulated) bandwidth.

    When a :class:`~repro.fl.wire.BroadcastCache` is attached (the server
    loop does this), the client-invariant downlink state is framed once
    per round under the server's round ``token`` and the cached blob is
    re-sent to every client — the encode is cached, the ledger charge is
    not (DESIGN.md §11).  Uploads are per-client content and always take
    a fresh encode.  Decoding uses the zero-copy mode: the returned views
    are backed by the immutable wire bytes, which stay alive through the
    views' buffer references.
    """

    def __init__(self, fault_model: FaultModel, ledger: CommLedger,
                 broadcast=None):
        self.fault_model = fault_model
        self.ledger = ledger
        self.broadcast = broadcast
        self.token = 0  # server round token; bumped by run_round
        # Quantization-config identity; folded into broadcast-cache keys
        # so a config change can never serve a stale cached blob.
        self.variant = None

    def download(self, round_idx: int, client_id: int,
                 state: dict[str, np.ndarray], salt: int = 0,
                 attempt: int = 0) -> dict[str, np.ndarray]:
        return self._transfer(round_idx, client_id, state, salt, attempt,
                              "down")

    def upload(self, round_idx: int, client_id: int,
               state: dict[str, np.ndarray], salt: int = 0,
               attempt: int = 0) -> dict[str, np.ndarray]:
        return self._transfer(round_idx, client_id, state, salt, attempt,
                              "up")

    def _transfer(self, round_idx: int, client_id: int,
                  state: dict[str, np.ndarray], salt: int, attempt: int,
                  direction: str) -> dict[str, np.ndarray]:
        if direction == "down" and self.broadcast is not None:
            blob = self.broadcast.encode(state, token=self.token,
                                         channel="down", checksums=True,
                                         variant=self.variant)
        else:
            blob = serialize_state(state, checksums=True)
        record = (self.ledger.record_down if direction == "down"
                  else self.ledger.record_up)
        record(round_idx, client_id, len(blob))
        wire_bytes = self.fault_model.corrupt(blob, round_idx, client_id,
                                              salt, attempt, direction)
        try:
            return deserialize_state(wire_bytes, checksums=True, copy=False)
        except PayloadError as err:
            raise TransferCorrupted(client_id, round_idx, direction,
                                    err) from err
