"""Population-scale round loop: virtual clients + streaming folds.

:class:`ScaleRunner` drives the same protocol as
``FederatedAlgorithm.run_round`` — sample → exchange → aggregate →
evaluate — but never holds a cohort of updates: each upload folds into
the algorithm's :class:`~repro.fl.scale.fold.StreamingFold` as it
arrives and is discarded, so server memory is O(model) + O(wave),
independent of cohort and population size.  With ``edges > 1`` the
cohort routes through :class:`~repro.fl.scale.hierarchy.EdgeAggregator`
partials instead.  Both paths are byte-identical to the materialized
baseline (golden-tested; see DESIGN.md §13 for the ordering argument).

Fault injection is deliberately unsupported here: the fault-tolerant
retry/quorum loop is the base class's job, and keeping this loop
fault-free keeps it exactly on the baseline's golden path.

Mid-round checkpointing: ``run_round_partial`` folds a prefix of the
cohort, ``save_round_checkpoint`` snapshots algorithm state + the
fold's accumulators + the spill position + the client-store manifest,
and a fresh runner ``load_round_checkpoint`` + ``resume_round`` —
byte-identical to the uninterrupted round.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.fl.base import RoundResult, sample_clients
from repro.fl.resilience import FaultStats
from repro.fl.scale.fold import UpdateSpill
from repro.fl.scale.hierarchy import EdgeAggregator, fold_partials
from repro.fl.scale.store import ClientStateStore
from repro.fl.scale.virtual import VirtualClientPool
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer


class ScaleRunner:
    """Streaming/hierarchical round loop over (optionally) virtual clients.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.fl.base.FederatedAlgorithm` (its ``clients``
        may be a :class:`VirtualClientPool`'s proxy list).
    pool:
        The pool backing the algorithm's virtual clients, if any —
        lets the runner evict each participant right after its upload
        is folded.  ``None`` for materialized clients.
    edges:
        Number of edge aggregators; 1 folds uploads straight at the
        root, >1 routes contiguous cohort slices through edge partials.
    spill_dir:
        Directory for fold/edge spill files.  Defaults to
        ``<store root>/spills`` with a pool, else a temp directory.
    eval_mode:
        ``"full"`` evaluates every client (the paper's §V-B metric,
        O(population) time); ``"none"`` skips evaluation (benchmark
        mode) and reports ``nan``.
    wave:
        Clients in flight between folds.  Defaults to 1 for the serial
        executor and ``2 * workers`` for process pools.
    """

    def __init__(self, algorithm, pool: VirtualClientPool | None = None,
                 edges: int = 1, spill_dir: str | os.PathLike | None = None,
                 eval_mode: str = "full", wave: int | None = None):
        if algorithm.fault_model is not None:
            raise ValueError("ScaleRunner is fault-free; use "
                             "FederatedAlgorithm.run_round for fault "
                             "injection")
        if edges < 1:
            raise ValueError("edges must be >= 1")
        if eval_mode not in ("full", "none"):
            raise ValueError(f"unknown eval_mode {eval_mode!r}")
        self.algo = algorithm
        self.pool = pool
        self.edges = int(edges)
        self.eval_mode = eval_mode
        if spill_dir is None:
            if pool is not None:
                spill_dir = os.path.join(pool.store.root, "spills")
            else:
                spill_dir = tempfile.mkdtemp(prefix="repro-scale-")
        self.spill_dir = os.fspath(spill_dir)
        os.makedirs(self.spill_dir, exist_ok=True)
        if wave is None:
            # An executor can hint its sweet-spot wave size (the
            # vectorized executor stacks this many clients per batched
            # step); otherwise keep 2x the worker count in flight so the
            # pool never idles, or 1 for in-process execution.
            preferred = getattr(algorithm.executor, "preferred_wave", None)
            if preferred:
                wave = preferred
            else:
                workers = getattr(algorithm.executor, "workers", None)
                wave = 2 * workers if workers else 1
        self.wave = max(1, int(wave))
        self._pending: dict[str, Any] | None = None

    # ------------------------------------------------------------ round

    def _spill_path(self, round_idx: int) -> str:
        return os.path.join(self.spill_dir, f"round_{round_idx}.spill")

    def _fold_cohort(self, fold, cohort, round_idx: int,
                     stats: FaultStats) -> list[float]:
        """Exchange + fold + evict, ``wave`` clients at a time."""
        losses: list[float] = []
        for lo in range(0, len(cohort), self.wave):
            chunk = cohort[lo:lo + self.wave]
            updates, chunk_losses = self.algo.executor.collect(
                self.algo, chunk, round_idx, 0, stats)
            for update in updates:
                fold.add(update)
            losses.extend(chunk_losses)
            if self.pool is not None:
                for client in chunk:
                    self.pool.evict(client.client_id)
        return losses

    def run_round(self, round_idx: int) -> RoundResult:
        """One streaming round; see the class docstring."""
        tracer = get_tracer()
        algo = self.algo
        algo._bcast_gen += 1
        with tracer.span("round", round=round_idx) as round_span:
            stats = FaultStats()
            with tracer.span("sample", round=round_idx, salt=0):
                selected = sample_clients(algo.clients, algo.sample_ratio,
                                          algo.seed, round_idx)
            spill = UpdateSpill(self._spill_path(round_idx))
            fold = algo.make_fold(spill)
            with tracer.span("fold", round=round_idx,
                             n_clients=len(selected), edges=self.edges):
                if self.edges == 1:
                    losses = self._fold_cohort(fold, selected, round_idx,
                                               stats)
                else:
                    losses = []
                    partials = []
                    per_edge = -(-len(selected) // self.edges)  # ceil div
                    for i, lo in enumerate(range(0, len(selected), per_edge)):
                        edge_slice = selected[lo:lo + per_edge]
                        edge = EdgeAggregator(i, self.spill_dir)
                        partial = edge.process(algo, edge_slice, round_idx,
                                               stats, pool=self.pool,
                                               wave=self.wave)
                        losses.extend(partial.losses)
                        partials.append(partial)
                    fold_partials(fold, partials)
            with tracer.span("aggregate", round=round_idx,
                             n_updates=fold.n_updates):
                n_updates = fold.n_updates
                fold.finalize(round_idx)
            spill.unlink()
            return self._finish_round(round_idx, n_updates, losses,
                                      round_span, tracer)

    def _finish_round(self, round_idx: int, n_updates: int,
                      losses: list[float], round_span, tracer) -> RoundResult:
        algo = self.algo
        algo.rounds_completed = round_idx + 1
        with tracer.span("evaluate", round=round_idx):
            acc = self._evaluate()
        finite = [v for v in losses if np.isfinite(v)]
        avg_loss = float(np.mean(finite)) if finite else float("nan")
        result = RoundResult(round_idx, avg_loss, acc, n_updates,
                             algo.ledger.round_bytes(round_idx),
                             committed=True)
        round_span.set(val_acc=acc, n_participants=n_updates,
                       bytes=result.round_bytes, committed=True)
        metrics = get_registry()
        metrics.counter("fl.rounds", algorithm=algo.name).inc()
        metrics.counter("fl.client_updates", algorithm=algo.name).inc(n_updates)
        metrics.counter("fl.bytes", algorithm=algo.name).inc(result.round_bytes)
        metrics.gauge("fl.val_acc", algorithm=algo.name).set(acc)
        return result

    def _evaluate(self) -> float:
        """``evaluate_all`` with per-client eviction (bounded residency)."""
        if self.eval_mode == "none":
            return float("nan")
        algo = self.algo
        accs = []
        for client in algo.clients:
            model = algo.client_eval_model(client)
            acc, _ = client.evaluate(model)
            accs.append(acc)
            if self.pool is not None:
                self.pool.evict(client.client_id)
        return float(np.mean(accs))

    def run(self, rounds: int) -> list[RoundResult]:
        """Run ``rounds`` consecutive rounds from the current position."""
        return [self.run_round(r)
                for r in range(self.algo.rounds_completed,
                               self.algo.rounds_completed + rounds)]

    # ------------------------------------------------ mid-round checkpoint

    def run_round_partial(self, round_idx: int, n_clients: int) -> None:
        """Fold the first ``n_clients`` of the round's cohort, then stop.

        Leaves the round pending; ``save_round_checkpoint`` can persist
        it and ``resume_round`` finishes it.  Single-root rounds only
        (``edges == 1``) — an edge partial mid-slice is not a
        checkpointable boundary.
        """
        if self.edges != 1:
            raise ValueError("mid-round checkpointing requires edges == 1")
        if self._pending is not None:
            raise RuntimeError("a partial round is already pending")
        algo = self.algo
        algo._bcast_gen += 1
        stats = FaultStats()
        selected = sample_clients(algo.clients, algo.sample_ratio,
                                  algo.seed, round_idx)
        spill = UpdateSpill(self._spill_path(round_idx))
        fold = algo.make_fold(spill)
        done, remaining = selected[:n_clients], selected[n_clients:]
        losses = self._fold_cohort(fold, done, round_idx, stats)
        self._pending = {"round_idx": round_idx, "fold": fold,
                         "spill": spill, "losses": losses,
                         "remaining": [c.client_id for c in remaining],
                         "stats": stats}

    def resume_round(self) -> RoundResult:
        """Finish the pending partial round; byte-identical to a full one."""
        if self._pending is None:
            raise RuntimeError("no partial round pending")
        tracer = get_tracer()
        p, self._pending = self._pending, None
        round_idx = p["round_idx"]
        with tracer.span("round", round=round_idx) as round_span:
            remaining = [self._client_by_id(cid) for cid in p["remaining"]]
            losses = p["losses"] + self._fold_cohort(
                p["fold"], remaining, round_idx, p["stats"])
            n_updates = p["fold"].n_updates
            p["fold"].finalize(round_idx)
            p["spill"].unlink()
            return self._finish_round(round_idx, n_updates, losses,
                                      round_span, tracer)

    def _client_by_id(self, cid: int):
        if self.pool is not None:
            from repro.fl.scale.virtual import VirtualClient
            return VirtualClient(cid, self.pool)
        for client in self.algo.clients:
            if client.client_id == cid:
                return client
        raise KeyError(f"no client with id {cid}")

    def save_round_checkpoint(self, path: str | Path) -> None:
        """Persist the pending partial round (see module docstring)."""
        from repro.fl.checkpoint import _collect_algo, _write
        if self._pending is None:
            raise RuntimeError("no partial round pending")
        p = self._pending
        if self.pool is not None:
            self.pool.flush()
        arrays: dict[str, np.ndarray] = {}
        manifest = _collect_algo(self.algo, arrays,
                                 include_clients=self.pool is None)
        fold_arrays, fold_meta = p["fold"].snapshot()
        for key, value in fold_arrays.items():
            arrays[f"fold.{key}"] = value
        p["spill"].flush()
        manifest["scale"] = {
            "round_idx": p["round_idx"],
            "remaining": p["remaining"],
            "losses": [float(v) for v in p["losses"]],
            "fold": fold_meta,
            "spill": {"path": p["spill"].path,
                      "n_records": p["spill"].n_records,
                      "nbytes": p["spill"].nbytes},
            "store": (self.pool.store.snapshot_manifest()
                      if self.pool is not None else None),
        }
        _write(path, arrays, manifest)

    def load_round_checkpoint(self, path: str | Path) -> None:
        """Restore a pending partial round into this (fresh) runner.

        The runner must wrap an identically-constructed algorithm; with
        a pool, the pool must sit on the same store root the checkpoint
        was taken from (shard logs are truncated back to the manifest).
        """
        from repro.fl.checkpoint import _apply_algo
        with np.load(Path(path)) as data:
            manifest = json.loads(bytes(data["__manifest__"]).decode())
            if "scale" not in manifest:
                raise ValueError("not a scale checkpoint")
            state = manifest["scale"]
            _apply_algo(self.algo, data, manifest)
            if self.pool is not None:
                if state["store"] is None:
                    raise ValueError("checkpoint carries no store manifest "
                                     "but the runner has a pool")
                self.pool.store = ClientStateStore.attach(
                    self.pool.store.root, state["store"])
                self.pool._resident.clear()
            spill = UpdateSpill.attach(state["spill"]["path"],
                                       state["spill"]["n_records"],
                                       state["spill"]["nbytes"])
            fold = self.algo.make_fold(spill,
                                       weighted=bool(state["fold"]["weighted"]))
            fold_arrays = {k[len("fold."):]: data[k] for k in data.files
                           if k.startswith("fold.")}
            fold.restore(fold_arrays, state["fold"])
            self.algo._bcast_gen += 1
            self._pending = {"round_idx": int(state["round_idx"]),
                             "fold": fold, "spill": spill,
                             "losses": [float(v) for v in state["losses"]],
                             "remaining": [int(c) for c in state["remaining"]],
                             "stats": FaultStats()}
