"""Hierarchical aggregation: edge aggregators between clients and root.

Topology (DESIGN.md §13): the sampled cohort is split into ``edges``
contiguous slices; each :class:`EdgeAggregator` runs its slice's
exchanges (through the algorithm's configured round executor, so edges
compose with :class:`~repro.fl.parallel.ProcessPoolRoundExecutor`),
consolidates the slice's uploads into **one** spill artifact — the
merged partial a real edge node would ship upstream — and evicts its
clients.  The root then folds the partials *in edge order* into a
single :class:`~repro.fl.scale.fold.StreamingFold`.

Byte-identity argument: contiguous slices in cohort order, replayed in
edge order, reconstruct exactly the original cohort order of updates;
each update crosses the edge→root hop through the lossless
``repro.fl.comm`` codec (the same one the parallel engine ships updates
through), so the root's fold sees bit-identical inputs in an identical
sequence.  Floating-point partials are *not* merged across edges — FP
addition is non-associative, and the repo's acceptance gate is bitwise
equality with the materialized baseline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.fl.comm import encode_update
from repro.fl.scale.fold import StreamingFold, UpdateSpill
from repro.obs.metrics import get_registry


@dataclass
class EdgePartial:
    """One edge's merged partial: a consolidated upload stream."""

    edge_idx: int
    spill: UpdateSpill
    client_ids: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    n_updates: int = 0


class EdgeAggregator:
    """Folds one sub-cohort into a single shippable partial."""

    def __init__(self, edge_idx: int, spill_dir: str | os.PathLike):
        self.edge_idx = edge_idx
        self.spill_dir = os.fspath(spill_dir)

    def process(self, algorithm, cohort, round_idx: int, stats,
                pool=None, wave: int = 1) -> EdgePartial:
        """Run the slice's exchanges; return the consolidated partial.

        ``wave`` bounds how many clients are in flight between spills —
        the edge's resident memory is O(wave · update), never
        O(slice · update).  Evicted clients return to the pool's store.
        """
        spill = UpdateSpill(os.path.join(
            self.spill_dir, f"edge_{self.edge_idx:03d}_r{round_idx}.spill"))
        partial = EdgePartial(self.edge_idx, spill)
        wave = max(1, int(wave))
        for lo in range(0, len(cohort), wave):
            chunk = cohort[lo:lo + wave]
            updates, losses = algorithm.executor.collect(
                algorithm, chunk, round_idx, 0, stats)
            for update in updates:
                spill.append(encode_update(update))
            partial.losses.extend(losses)
            partial.client_ids.extend(c.client_id for c in chunk)
            partial.n_updates += len(updates)
            if pool is not None:
                for client in chunk:
                    pool.evict(client.client_id)
        get_registry().counter("scale.edge_partials").inc()
        return partial


def fold_partials(fold: StreamingFold, partials: list[EdgePartial]) -> None:
    """Replay edge partials into the root fold, in edge order."""
    from repro.fl.comm import decode_update
    for partial in partials:
        for blob in partial.spill:
            fold.add(decode_update(blob, copy=False))
        partial.spill.unlink()
