"""Streaming fold aggregation: commit each upload, then discard it.

The batch server holds a full cohort of updates before aggregating —
O(cohort · model) memory.  A :class:`StreamingFold` is an incremental
accumulator with the same numerics: ``add(update)`` folds one upload in
(spilling whatever a later reduction still needs to disk via
:class:`UpdateSpill`) and ``finalize(round_idx)`` installs the result
into the algorithm's global state.  Every fold is **bitwise-identical**
to the batch ``aggregate`` / ``aggregate_weighted`` path it shadows —
floating-point addition is not associative, so each fold replays the
exact per-key / per-coordinate addition *order* of its batch
counterpart, and golden tests plus a Hypothesis property suite gate the
equivalence (DESIGN.md §13).

Folds are obtained through ``FederatedAlgorithm.make_fold(spill,
weighted=...)``:

- :class:`DictMeanFold` — FedAvg-family ``weighted_average_states``
  reductions (FedAvg, FedProx, StubAvg).  Dense states spill to disk;
  only the example-count/weight pairs stay resident.
- :class:`SPATLFold` — SPATL's Eq. 12 index-wise salient aggregation
  with *running* coverage counts, eager Eq. 11 variate reconstruction,
  and a spilled dense/predictor stream.  Server memory is O(model),
  independent of cohort size.
- :class:`SpillReplayFold` — lossless fallback for algorithms with
  order-coupled aggregation geometry (SCAFFOLD, FedNova, FedTopK):
  every update spills through the exact ``repro.fl.comm`` codec and the
  batch path replays at finalize.  Peak memory returns to O(cohort) for
  the duration of ``finalize`` only.
"""

from __future__ import annotations

import os
import struct
from typing import Any, Iterator

import numpy as np

from repro.fl.comm import decode_update, encode_update
from repro.fl.wire import deserialize, serialize
from repro.obs.metrics import get_registry

_REC_HDR = struct.Struct("<Q")

_EMPTY_MSG = ("aggregate() needs >= 1 surviving update; "
              "skipped rounds must not reach aggregation")


class UpdateSpill:
    """Append-only length-prefixed blob log backing a fold's disk state."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._file = open(self.path, "w+b")
        self.n_records = 0
        self.nbytes = 0

    @classmethod
    def attach(cls, path: str | os.PathLike, n_records: int,
               nbytes: int) -> "UpdateSpill":
        """Reopen an existing spill at a checkpointed position.

        Truncates to ``nbytes`` so records appended after the snapshot
        are discarded — resume is byte-identical.
        """
        spill = cls.__new__(cls)
        spill.path = os.fspath(path)
        spill._file = open(spill.path, "r+b")
        spill._file.truncate(nbytes)
        spill._file.seek(nbytes)
        spill.n_records = int(n_records)
        spill.nbytes = int(nbytes)
        return spill

    def append(self, blob: bytes) -> None:
        self._file.write(_REC_HDR.pack(len(blob)))
        self._file.write(blob)
        self.n_records += 1
        self.nbytes += _REC_HDR.size + len(blob)

    def __iter__(self) -> Iterator[bytes]:
        """Stream records back; safe to call while the file stays open."""
        self._file.flush()
        fd = self._file.fileno()
        off = 0
        for _ in range(self.n_records):
            (blob_len,) = _REC_HDR.unpack(os.pread(fd, _REC_HDR.size, off))
            yield os.pread(fd, blob_len, off + _REC_HDR.size)
            off += _REC_HDR.size + blob_len

    def flush(self) -> None:
        self._file.flush()

    def unlink(self) -> None:
        self._file.close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


class StreamingFold:
    """Incremental aggregation accumulator (see module docstring).

    ``snapshot()`` / ``restore()`` capture and reinstall the resident
    accumulator state for mid-round checkpointing; the spill file is
    checkpointed separately (path + record count + byte length) by
    :mod:`repro.fl.checkpoint`.
    """

    def __init__(self, algorithm, spill: UpdateSpill, weighted: bool = False):
        self.algo = algorithm
        self.spill = spill
        self.weighted = bool(weighted)
        self.n_updates = 0
        self._pairs: list[tuple[float, float]] = []  # (n, weight)

    def _check_weight(self, weight: float) -> float:
        weight = float(weight)
        if self.weighted and weight <= 0.0:
            raise ValueError("aggregation weights must be > 0")
        return weight

    def add(self, update: Any, weight: float = 1.0) -> None:
        raise NotImplementedError

    def finalize(self, round_idx: int) -> None:
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        arrays = {"pairs": np.asarray(self._pairs, dtype=np.float64).reshape(
            (self.n_updates, 2))}
        meta = {"kind": type(self).__name__, "n_updates": self.n_updates,
                "weighted": self.weighted}
        return arrays, meta

    def restore(self, arrays: dict[str, np.ndarray],
                meta: dict[str, Any]) -> None:
        if meta["kind"] != type(self).__name__:
            raise ValueError(f"fold kind mismatch: checkpoint has "
                             f"{meta['kind']!r}, algorithm builds "
                             f"{type(self).__name__!r}")
        self.weighted = bool(meta["weighted"])
        self.n_updates = int(meta["n_updates"])
        self._pairs = [(float(n), float(w)) for n, w in arrays["pairs"]]

    def _final_weights(self) -> list[float]:
        if self.weighted:
            return [n * w for n, w in self._pairs]
        return [n for n, _ in self._pairs]


def _stream_weighted_average(records: Iterator[dict[str, np.ndarray]],
                             weights: list[float]) -> dict[str, np.ndarray]:
    """:func:`repro.fl.local.weighted_average_states`, record-streamed.

    The batch reduction is key-outer / state-inner; streaming is forced
    to be state-outer / key-inner.  Per key the *sequence* of additions
    (normalized weight times state, in cohort order) is identical, so
    the result is bitwise-equal; the output dict is built in the first
    state's key order so downstream ``load_state_dict`` consumers see
    the same key order too.
    """
    w = np.asarray(weights, dtype=np.float64)
    w = w / w.sum()
    out: dict[str, np.ndarray] = {}
    acc: dict[str, np.ndarray] = {}
    dtypes: dict[str, np.dtype] = {}
    for i, state in enumerate(records):
        if i == 0:
            for key in state:
                first = np.asarray(state[key])
                if first.dtype.kind in "iu":
                    out[key] = first.copy()
                else:
                    out[key] = None  # placeholder holding the key's slot
                    acc[key] = np.zeros_like(first, dtype=np.float64)
                    dtypes[key] = first.dtype
        for key in acc:
            acc[key] += w[i] * np.asarray(state[key], dtype=np.float64)
    for key in acc:
        out[key] = acc[key].astype(dtypes[key])
    return out


class DictMeanFold(StreamingFold):
    """Streaming ``weighted_average_states`` over ``update["state"]``."""

    def add(self, update: dict, weight: float = 1.0) -> None:
        weight = self._check_weight(weight)
        self.spill.append(serialize(update["state"]))
        self._pairs.append((float(update["n"]), weight))
        self.n_updates += 1

    def finalize(self, round_idx: int) -> None:
        if not self.n_updates:
            raise ValueError(_EMPTY_MSG)
        records = (deserialize(blob, copy=False) for blob in self.spill)
        avg = _stream_weighted_average(records, self._final_weights())
        self.algo.global_model.load_state_dict(avg)
        get_registry().counter("scale.folds",
                               algorithm=self.algo.name).inc()


class SPATLFold(StreamingFold):
    """Streaming SPATL aggregation: Eq. 12 + dense mean + Eq. 11.

    Resident state per prunable layer: the frozen float64 snapshot of
    the global weight (Eq. 12's diffs are all taken against the
    *pre-round* global, so it is captured at construction), the running
    scatter-add accumulator, and running coverage counts (integer when
    unweighted — exactly mergeable — float64 sequential adds when
    weighted, matching ``np.bincount(..., weights=...)`` order).  Eq. 11
    variate deltas accumulate eagerly per upload in the same per-name
    order as the batch loop.  Dense tensors and shared-predictor states
    spill to disk and stream through the weighted average at finalize.
    """

    def __init__(self, algorithm, spill: UpdateSpill, weighted: bool = False):
        super().__init__(algorithm, spill, weighted)
        algo = algorithm
        self._params = dict(algo.global_model.encoder.named_parameters())
        self._out: dict[str, np.ndarray] = {}
        self._acc: dict[str, np.ndarray] = {}
        self._counts: dict[str, np.ndarray] = {}
        self._row_width: dict[str, int] = {}
        for layer in algo.prunable:
            key = layer + ".weight"
            out = np.array(self._params[key].data, dtype=np.float64)
            self._out[layer] = out
            self._acc[layer] = np.zeros_like(out)
            self._counts[layer] = np.zeros(
                out.shape[0], dtype=np.float64 if weighted else np.int64)
            width = 1
            for dim in out.shape[1:]:
                width *= int(dim)
            self._row_width[layer] = width
        self._c_acc: dict[str, np.ndarray] = {}
        if algo.use_gradient_control:
            for name, c_val in algo.c_global.values.items():
                self._c_acc[name] = np.zeros_like(c_val, dtype=np.float64)

    def add(self, update: dict, weight: float = 1.0) -> None:
        weight = self._check_weight(weight)
        algo = self.algo

        # --- Eq. 12: one upload's contribution per prunable layer ------
        for layer in algo.prunable:
            out = self._out[layer]
            acc = self._acc[layer]
            indices, rows = update["salient"][layer]
            indices = np.asarray(indices, dtype=np.int64)
            rows = np.asarray(rows)
            if rows.shape[0] != len(indices):
                raise ValueError("upload rows/indices mismatch")
            if len(indices) and (indices.min() < 0
                                 or indices.max() >= out.shape[0]):
                raise IndexError("salient index out of range")
            diff = rows.astype(np.float64) - out[indices]
            if self.weighted:
                diff = weight * diff
                np.add.at(self._counts[layer], indices.ravel(), weight)
            else:
                self._counts[layer] += np.bincount(indices.ravel(),
                                                   minlength=out.shape[0])
            if (self._row_width[layer] >= 8
                    and indices.size == np.unique(indices).size):
                acc[indices] += diff
            else:
                np.add.at(acc, indices, diff)

        # --- Eq. 11: eager variate-delta accumulation ------------------
        if algo.use_gradient_control:
            for name, c_val in algo.c_global.values.items():
                acc = self._c_acc[name]
                layer = name[:-len(".weight")] if name.endswith(".weight") \
                    else None
                before = update["before"][name]
                if layer in update["salient"]:
                    idx, rows = update["salient"][layer]
                    idx = np.asarray(idx, dtype=np.int64)
                    delta = -c_val[idx] + (before[idx] - rows) / (
                        update["eff_steps"] * algo.lr)
                    acc[idx] += weight * delta if self.weighted else delta
                elif name in update["dense"]:
                    delta = -c_val + (before - update["dense"][name]) / (
                        update["eff_steps"] * algo.lr)
                    acc += weight * delta if self.weighted else delta

        # --- dense + shared predictor spill for the finalize stream ----
        self.spill.append(encode_update({"dense": update["dense"],
                                         "pred": update["predictor_state"]}))
        self._pairs.append((float(update["n"]), weight))
        self.n_updates += 1

    def finalize(self, round_idx: int) -> None:
        if not self.n_updates:
            raise ValueError(_EMPTY_MSG)
        algo = self.algo

        # --- Eq. 12: apply covered-coordinate means --------------------
        for layer in algo.prunable:
            out = self._out[layer]
            counts = self._counts[layer]
            covered = counts > 0
            if covered.any():
                denom = counts[covered].reshape((-1,) + (1,) * (out.ndim - 1))
                out[covered] += (algo.aggregation_step
                                 * self._acc[layer][covered] / denom)
            param = self._params[layer + ".weight"]
            param.data[...] = out.astype(param.data.dtype)

        # --- dense tensors (and shared predictor) ----------------------
        weights = self._final_weights()
        dense_avg = _stream_weighted_average(
            (decode_update(blob)["dense"] for blob in self.spill), weights)
        dense_param_keys = [k for k in dense_avg if k in self._params]
        for key in dense_param_keys:
            self._params[key].data[...] = dense_avg[key]
        owners = algo.global_model.encoder._buffer_owners()
        for key, (owner, local) in owners.items():
            if key in dense_avg:
                owner.set_buffer(local, dense_avg[key])
        if not algo.use_transfer:
            pred_avg = _stream_weighted_average(
                (decode_update(blob)["pred"] for blob in self.spill), weights)
            algo.global_model.load_predictor_state(pred_avg)

        # --- Eq. 11: c += sum(delta c_i) / N ---------------------------
        if algo.use_gradient_control:
            n_all = len(algo.clients)
            for name, c_val in algo.c_global.values.items():
                algo.c_global.values[name] = (
                    c_val + self._c_acc[name] / n_all).astype(c_val.dtype)
        get_registry().counter("scale.folds", algorithm=algo.name).inc()

    # -- checkpointing -------------------------------------------------

    def snapshot(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        arrays, meta = super().snapshot()
        for layer in self.algo.prunable:
            arrays[f"acc.{layer}"] = self._acc[layer]
            arrays[f"counts.{layer}"] = self._counts[layer]
        for name, acc in self._c_acc.items():
            arrays[f"cacc.{name}"] = acc
        return arrays, meta

    def restore(self, arrays: dict[str, np.ndarray],
                meta: dict[str, Any]) -> None:
        super().restore(arrays, meta)
        for layer in self.algo.prunable:
            self._acc[layer] = np.array(arrays[f"acc.{layer}"])
            counts = np.array(arrays[f"counts.{layer}"])
            self._counts[layer] = counts.astype(
                np.float64 if self.weighted else np.int64)
        for name in list(self._c_acc):
            self._c_acc[name] = np.array(arrays[f"cacc.{name}"])


class SpillReplayFold(StreamingFold):
    """Lossless spill-then-replay fallback for order-coupled aggregation.

    Every update passes through the exact :func:`encode_update` /
    :func:`decode_update` codec (golden-tested lossless), so the batch
    ``aggregate`` replay at finalize is bitwise-identical to never
    having spilled.  Memory is O(cohort) only inside ``finalize``.
    """

    def add(self, update: Any, weight: float = 1.0) -> None:
        weight = self._check_weight(weight)
        self.spill.append(encode_update(update))
        self._pairs.append((0.0, weight))
        self.n_updates += 1

    def finalize(self, round_idx: int) -> None:
        if not self.n_updates:
            raise ValueError(_EMPTY_MSG)
        updates = [decode_update(blob) for blob in self.spill]
        if self.weighted:
            self.algo.aggregate_weighted(
                updates, [w for _, w in self._pairs], round_idx)
        else:
            self.algo.aggregate(updates, round_idx)
        get_registry().counter("scale.folds",
                               algorithm=self.algo.name).inc()
