"""Sharded spill-to-disk key-value store for virtual-client state.

``ClientStateStore`` keeps per-client state (predictor heads, SCAFFOLD
control variates, RL policy context) on disk so a 100k-client population
costs disk, not RAM.  Values are opaque byte blobs produced by the
lossless ``repro.fl.comm`` pytree codec; the in-memory footprint is one
index entry per *stored* key (clients that never wrote state never touch
the index).

Layout: ``shards`` append-only log files under ``root``.  Each record is
self-describing::

    [u32 key_len][key utf-8][u64 blob_len][blob]

A rewrite of an existing key appends a fresh record and marks the old
bytes dead; compaction rewrites a shard from its live index once dead
bytes dominate.  Reads go through ``os.pread`` so pickled replicas (e.g.
process-pool workers) can read concurrently without sharing file
offsets.  Replicas created via pickle are *frozen*: they read but never
write, so worker processes cannot corrupt the parent's logs.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Iterator

import numpy as np

from repro.fl.comm import decode_update, encode_update
from repro.obs.metrics import get_registry

_KEY_HDR = struct.Struct("<I")
_BLOB_HDR = struct.Struct("<Q")

# Threshold (bytes) below which compaction is never triggered; tiny logs
# are cheaper to leave fragmented than to rewrite.
_COMPACT_MIN_BYTES = 1 << 20

_CV_TAG = "__controlvariate__"


def encode_client_state(state: dict[str, Any]) -> bytes:
    """Encode a client ``local_state`` dict to bytes, losslessly.

    ``ControlVariate`` objects (SCAFFOLD / SPATL Eq. 9-11 state) are not
    a pytree leaf the comm codec knows, so they are converted to a
    tagged dict of their arrays and rebuilt on decode.
    """
    from repro.core.gradient_control import ControlVariate

    def convert(obj: Any) -> Any:
        if isinstance(obj, ControlVariate):
            return {_CV_TAG: dict(obj.values)}
        if isinstance(obj, dict):
            return {k: convert(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            converted = [convert(v) for v in obj]
            return tuple(converted) if isinstance(obj, tuple) else converted
        return obj

    return encode_update(convert(state))


def decode_client_state(blob: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_client_state` (always copies arrays)."""
    from repro.core.gradient_control import ControlVariate

    def restore(obj: Any) -> Any:
        if isinstance(obj, dict):
            if set(obj) == {_CV_TAG}:
                cv = ControlVariate({})
                cv.values = {k: np.array(v) for k, v in obj[_CV_TAG].items()}
                return cv
            return {k: restore(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            restored = [restore(v) for v in obj]
            return tuple(restored) if isinstance(obj, tuple) else restored
        return obj

    return restore(decode_update(blob))


class ClientStateStore:
    """Sharded append-log KV store with lazy reads and compaction."""

    def __init__(self, root: str | os.PathLike, shards: int = 4,
                 auto_compact: bool = True):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = os.fspath(root)
        self.shards = int(shards)
        self.auto_compact = bool(auto_compact)
        self.frozen = False
        os.makedirs(self.root, exist_ok=True)
        # key -> (shard_idx, blob_offset, blob_len)
        self._index: dict[str, tuple[int, int, int]] = {}
        self._files: list[Any] = []
        self._sizes: list[int] = []
        self._dead: list[int] = []
        for i in range(self.shards):
            f = open(self._shard_path(i), "a+b")
            self._files.append(f)
            self._sizes.append(os.fstat(f.fileno()).st_size)
            self._dead.append(0)
        if any(self._sizes):
            self._rebuild_index()

    # -- shard helpers ------------------------------------------------

    def _shard_path(self, idx: int) -> str:
        return os.path.join(self.root, f"shard_{idx:04d}.log")

    def _shard_of(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.shards

    def _rebuild_index(self) -> None:
        """Replay every shard log; later records win."""
        self._index.clear()
        self._dead = [0] * self.shards
        for i, f in enumerate(self._files):
            f.flush()
            fd = f.fileno()
            size = self._sizes[i]
            off = 0
            while off < size:
                hdr = os.pread(fd, _KEY_HDR.size, off)
                if len(hdr) < _KEY_HDR.size:
                    break
                (key_len,) = _KEY_HDR.unpack(hdr)
                key = os.pread(fd, key_len, off + _KEY_HDR.size).decode("utf-8")
                blob_hdr_off = off + _KEY_HDR.size + key_len
                (blob_len,) = _BLOB_HDR.unpack(
                    os.pread(fd, _BLOB_HDR.size, blob_hdr_off))
                blob_off = blob_hdr_off + _BLOB_HDR.size
                prev = self._index.get(key)
                if prev is not None:
                    self._dead[prev[0]] += self._record_nbytes(key, prev[2])
                self._index[key] = (i, blob_off, blob_len)
                off = blob_off + blob_len

    @staticmethod
    def _record_nbytes(key: str, blob_len: int) -> int:
        return _KEY_HDR.size + len(key.encode("utf-8")) + _BLOB_HDR.size + blob_len

    # -- public API ---------------------------------------------------

    def put(self, key: str, blob: bytes) -> None:
        if self.frozen:
            raise RuntimeError("store replica is frozen (read-only)")
        i = self._shard_of(key)
        f = self._files[i]
        key_bytes = key.encode("utf-8")
        prev = self._index.get(key)
        if prev is not None:
            self._dead[prev[0]] += self._record_nbytes(key, prev[2])
        f.seek(0, os.SEEK_END)
        f.write(_KEY_HDR.pack(len(key_bytes)))
        f.write(key_bytes)
        f.write(_BLOB_HDR.pack(len(blob)))
        f.write(blob)
        f.flush()
        blob_off = self._sizes[i] + _KEY_HDR.size + len(key_bytes) + _BLOB_HDR.size
        self._index[key] = (i, blob_off, len(blob))
        self._sizes[i] = blob_off + len(blob)
        get_registry().counter("scale.store_puts").inc()
        if self.auto_compact:
            self._maybe_compact(i)

    def get(self, key: str) -> bytes | None:
        entry = self._index.get(key)
        if entry is None:
            return None
        i, blob_off, blob_len = entry
        if not self.frozen:
            self._files[i].flush()
        get_registry().counter("scale.store_gets").inc()
        return os.pread(self._files[i].fileno(), blob_len, blob_off)

    def delete(self, key: str, missing_ok: bool = True) -> None:
        if self.frozen:
            raise RuntimeError("store replica is frozen (read-only)")
        entry = self._index.pop(key, None)
        if entry is None:
            if missing_ok:
                return
            raise KeyError(key)
        self._dead[entry[0]] += self._record_nbytes(key, entry[2])
        if self.auto_compact:
            self._maybe_compact(entry[0])

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    @property
    def nbytes(self) -> int:
        """Total on-disk bytes across shards (live + dead)."""
        return sum(self._sizes)

    # -- compaction ---------------------------------------------------

    def _maybe_compact(self, shard_idx: int) -> None:
        dead = self._dead[shard_idx]
        live = self._sizes[shard_idx] - dead
        if dead > _COMPACT_MIN_BYTES and dead > live:
            self.compact(shard_idx)

    def compact(self, shard_idx: int | None = None) -> None:
        """Rewrite shard(s) keeping only live records."""
        if self.frozen:
            raise RuntimeError("store replica is frozen (read-only)")
        targets = range(self.shards) if shard_idx is None else [shard_idx]
        for i in targets:
            live = [(key, entry) for key, entry in self._index.items()
                    if entry[0] == i]
            old = self._files[i]
            old.flush()
            fd = old.fileno()
            tmp_path = self._shard_path(i) + ".compact"
            off = 0
            with open(tmp_path, "wb") as tmp:
                for key, (_, blob_off, blob_len) in live:
                    blob = os.pread(fd, blob_len, blob_off)
                    key_bytes = key.encode("utf-8")
                    tmp.write(_KEY_HDR.pack(len(key_bytes)))
                    tmp.write(key_bytes)
                    tmp.write(_BLOB_HDR.pack(blob_len))
                    tmp.write(blob)
                    new_blob_off = (off + _KEY_HDR.size + len(key_bytes)
                                    + _BLOB_HDR.size)
                    self._index[key] = (i, new_blob_off, blob_len)
                    off = new_blob_off + blob_len
            old.close()
            os.replace(tmp_path, self._shard_path(i))
            self._files[i] = open(self._shard_path(i), "a+b")
            self._sizes[i] = off
            self._dead[i] = 0
            get_registry().counter("scale.store_compactions").inc()

    # -- snapshot / restore -------------------------------------------

    def flush(self) -> None:
        for f in self._files:
            f.flush()

    def snapshot_manifest(self) -> dict[str, Any]:
        """Checkpointable description of the store's current contents.

        Restoring with :meth:`attach` truncates each shard log back to
        the recorded size, which discards any records appended after
        the snapshot — byte-identical resume.
        """
        self.flush()
        return {
            "shards": self.shards,
            "sizes": list(self._sizes),
            "index": {k: list(v) for k, v in self._index.items()},
        }

    @classmethod
    def attach(cls, root: str | os.PathLike,
               manifest: dict[str, Any]) -> "ClientStateStore":
        store = cls.__new__(cls)
        store.root = os.fspath(root)
        store.shards = int(manifest["shards"])
        store.auto_compact = True
        store.frozen = False
        store._files = []
        store._sizes = []
        store._dead = [0] * store.shards
        for i in range(store.shards):
            path = store._shard_path(i)
            size = int(manifest["sizes"][i])
            with open(path, "a+b"):
                pass
            os.truncate(path, size)
            store._files.append(open(path, "a+b"))
            store._sizes.append(size)
        store._index = {k: tuple(v) for k, v in manifest["index"].items()}
        return store

    # -- pickling (process-pool replicas) -----------------------------

    def __getstate__(self) -> dict[str, Any]:
        self.flush()
        return {
            "root": self.root,
            "shards": self.shards,
            "auto_compact": self.auto_compact,
            "sizes": list(self._sizes),
            "index": {k: v for k, v in self._index.items()},
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = state["root"]
        self.shards = state["shards"]
        self.auto_compact = state["auto_compact"]
        self.frozen = True
        self._sizes = list(state["sizes"])
        self._dead = [0] * self.shards
        self._index = dict(state["index"])
        self._files = [open(self._shard_path(i), "rb")
                       for i in range(self.shards)]

    def close(self) -> None:
        for f in self._files:
            f.close()
