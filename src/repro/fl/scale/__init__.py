"""Population-scale federated simulation (DESIGN.md §13).

Four pieces, composable with every algorithm and executor:

- :class:`ClientStateStore` — sharded spill-to-disk KV store for
  per-client persistent state;
- :class:`VirtualClientPool` / :class:`VirtualClient` — lazily
  materialized population over the store;
- streaming folds (:mod:`repro.fl.scale.fold`) — O(model) incremental
  aggregation, bitwise-equal to the batch path;
- :class:`EdgeAggregator` + :class:`ScaleRunner` — hierarchical and
  streaming round loops.
"""

from repro.fl.scale.fold import (DictMeanFold, SPATLFold, SpillReplayFold,
                                 StreamingFold, UpdateSpill)
from repro.fl.scale.hierarchy import EdgeAggregator, EdgePartial, fold_partials
from repro.fl.scale.runner import ScaleRunner
from repro.fl.scale.store import (ClientStateStore, decode_client_state,
                                  encode_client_state)
from repro.fl.scale.virtual import (ShardedClientFactory, StubClientFactory,
                                    VirtualClient, VirtualClientPool)

__all__ = [
    "ClientStateStore", "encode_client_state", "decode_client_state",
    "UpdateSpill", "StreamingFold", "DictMeanFold", "SPATLFold",
    "SpillReplayFold", "VirtualClient", "VirtualClientPool",
    "ShardedClientFactory", "StubClientFactory", "EdgeAggregator",
    "EdgePartial", "fold_partials", "ScaleRunner",
]
