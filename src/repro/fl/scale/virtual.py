"""Virtual clients: a population addressed lazily through an LRU pool.

A :class:`VirtualClient` is a client-shaped proxy holding only its id;
attribute access materializes the real client through the pool's factory
(FedBB's many-clients-per-worker pattern — model/shard setup is paid per
*resident* client, not per population member).  The pool keeps at most
``resident_limit`` real clients in memory; evicted clients spill their
``local_state`` into a :class:`~repro.fl.scale.store.ClientStateStore`
and are rebuilt (factory + hydrate) on next touch.  A 100k-client
population therefore costs one index entry per client *with state* plus
a bounded working set — disk, not RAM.

Factories are top-level picklable callables (``cid -> Client``) so an
algorithm holding virtual clients still rides through the process-pool
executor: the pickled replica carries the factory and a *frozen* store
replica, and any state a worker mutates travels back through the
executor's ordinary local-state commit path, never through the store.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.fl.scale.store import (ClientStateStore, decode_client_state,
                                  encode_client_state)
from repro.obs.metrics import get_registry

_PROXY_SLOTS = ("client_id", "_pool")


class VirtualClient:
    """Attribute-forwarding proxy for one population member."""

    __slots__ = _PROXY_SLOTS

    def __init__(self, client_id: int, pool: "VirtualClientPool"):
        object.__setattr__(self, "client_id", client_id)
        object.__setattr__(self, "_pool", pool)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._pool.materialize(self.client_id), name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _PROXY_SLOTS:
            object.__setattr__(self, name, value)
        else:
            setattr(self._pool.materialize(self.client_id), name, value)

    def __repr__(self) -> str:
        return f"VirtualClient({self.client_id})"

    def __reduce__(self):
        # Re-proxy on unpickle — never drag the materialized client
        # (or, via default __getattr__ forwarding, its state) along.
        return (VirtualClient, (self.client_id, self._pool))


class VirtualClientPool:
    """LRU pool of materialized clients over a spill-to-disk store."""

    def __init__(self, factory: Callable[[int], Any], population: int,
                 store: ClientStateStore, resident_limit: int = 64):
        if population < 1:
            raise ValueError("population must be >= 1")
        if resident_limit < 1:
            raise ValueError("resident_limit must be >= 1")
        self.factory = factory
        self.population = int(population)
        self.store = store
        self.resident_limit = int(resident_limit)
        self._resident: OrderedDict[int, Any] = OrderedDict()

    def clients(self) -> list[VirtualClient]:
        """Proxy list for the whole population (no materialization)."""
        return [VirtualClient(cid, self) for cid in range(self.population)]

    @property
    def resident(self) -> int:
        return len(self._resident)

    def materialize(self, cid: int):
        """The real client for ``cid``, building + hydrating on miss."""
        real = self._resident.get(cid)
        if real is not None:
            self._resident.move_to_end(cid)
            return real
        real = self.factory(cid)
        blob = self.store.get(f"client/{cid}")
        if blob is not None:
            real.local_state = decode_client_state(blob)
        get_registry().counter("scale.materializations").inc()
        self._resident[cid] = real
        while len(self._resident) > self.resident_limit:
            old_cid, old = self._resident.popitem(last=False)
            self._spill(old_cid, old)
        return real

    def _spill(self, cid: int, real) -> None:
        get_registry().counter("scale.evictions").inc()
        if self.store.frozen:
            # Worker replica: mutated state travels back through the
            # executor's result pickles; the parent commits and evicts.
            return
        key = f"client/{cid}"
        # Stateless clients (nothing accumulated yet, nothing stored
        # before) keep the store index empty — O(stateful clients), not
        # O(population).
        if real.local_state or key in self.store:
            self.store.put(key, encode_client_state(real.local_state))

    def evict(self, cid: int) -> None:
        """Spill one client now (after its upload is folded)."""
        real = self._resident.pop(cid, None)
        if real is not None:
            self._spill(cid, real)

    def flush(self) -> None:
        """Spill every resident client (checkpoint barrier)."""
        while self._resident:
            cid, real = self._resident.popitem(last=False)
            self._spill(cid, real)

    def __getstate__(self) -> dict[str, Any]:
        # Worker replicas start with an empty cache over a frozen store
        # replica; materialized clients never cross process boundaries
        # through the pool (their local_state travels via the executor's
        # task pickles instead).
        return {"factory": self.factory, "population": self.population,
                "store": self.store, "resident_limit": self.resident_limit}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.factory = state["factory"]
        self.population = state["population"]
        self.store = state["store"]
        self.resident_limit = state["resident_limit"]
        self._resident = OrderedDict()


@dataclass
class ShardedClientFactory:
    """Picklable ``cid -> Client`` reproducing ``make_federated_clients``.

    Builds the *same* client (same shard split, same seeds, hence the
    same batch order and numerics) as
    :func:`repro.fl.client.make_federated_clients` would have placed at
    index ``cid`` — materialized lazily instead of eagerly.
    """

    dataset: Any
    parts: list[np.ndarray]
    val_fraction: float = 0.2
    batch_size: int = 32
    seed: int = 0

    def __post_init__(self):
        self.population = len(self.parts)

    def __call__(self, cid: int):
        from repro.data.datasets import train_val_split
        from repro.fl.client import Client
        shard = self.dataset.subset(self.parts[cid])
        train, val = train_val_split(shard, self.val_fraction,
                                     seed=self.seed * 7919 + cid)
        return Client(client_id=cid, train_data=train, val_data=val,
                      batch_size=self.batch_size,
                      seed=self.seed * 104729 + cid)


@dataclass
class StubClientFactory:
    """Picklable ``cid -> StubClient`` for protocol tests and benches."""

    def __call__(self, cid: int):
        from repro.fl.stub import StubClient
        return StubClient(cid)
