"""Federated client: local data shards, local training, local evaluation.

A :class:`Client` owns a non-IID train/validation shard (produced by the
partitioners in :mod:`repro.data.partition`) plus ``local_state``, the
algorithm-owned per-client storage that persists across rounds — control
variates, private predictors, fine-tuned agent heads.  Because
``local_state`` is plain arrays/dicts it travels losslessly through the
wire codec, which is what lets the process-parallel executor
(:mod:`repro.fl.parallel`) ship it to a worker and commit the mutated
copy back byte-identically.  :func:`make_federated_clients` builds a
cohort from a dataset and a partition.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataloader import DataLoader
from repro.data.datasets import ArrayDataset, train_val_split
from repro.tensor import Tensor, functional as F, no_grad
from repro.utils.metrics import RunningAverage


@dataclass
class Client:
    """One edge device: a train shard, a validation shard, and local state.

    ``local_state`` is algorithm-owned storage that survives across rounds —
    SCAFFOLD keeps its control variate ``c_i`` there, SPATL keeps ``c_i``,
    the private predictor, and the fine-tuned RL agent head.
    """

    client_id: int
    train_data: ArrayDataset
    val_data: ArrayDataset
    batch_size: int = 32
    seed: int = 0
    local_state: dict = field(default_factory=dict)

    @property
    def num_train(self) -> int:
        return len(self.train_data)

    def snapshot_local_state(self) -> dict:
        """Deep copy of ``local_state`` — taken before local training so a
        simulated mid-training crash can roll the client back to what a
        restarted process would reload from disk."""
        return copy.deepcopy(self.local_state)

    def restore_local_state(self, snapshot: dict) -> None:
        """Replace ``local_state`` with a snapshot (crash rollback)."""
        self.local_state = snapshot

    def train_loader(self, round_idx: int) -> DataLoader:
        return DataLoader(self.train_data, batch_size=self.batch_size,
                          shuffle=True, seed=self.seed * 100_003 + round_idx)

    def evaluate(self, model, data: ArrayDataset | None = None,
                 batch_size: int = 256) -> tuple[float, float]:
        """(top-1 accuracy, mean loss) of ``model`` on ``data`` (default: val).

        Runs on the inference fast path (DESIGN.md §10): ``no_grad``
        skips autodiff graph/closure construction, and adjacent conv+BN
        pairs are folded for the duration.  Evaluation results feed only
        reporting/early-stopping, never training numerics, so the
        float32-rounding-level difference of the folded path is safe.
        """
        from repro.nn.fuse import folded_inference
        data = data if data is not None else self.val_data
        model.eval()
        acc = RunningAverage()
        loss_avg = RunningAverage()
        with no_grad(), folded_inference(model):
            for lo in range(0, len(data), batch_size):
                xb = data.x[lo:lo + batch_size]
                yb = data.y[lo:lo + batch_size]
                logits = model(Tensor(xb))
                acc.update(F.accuracy(logits, yb), len(yb))
                loss_avg.update(F.cross_entropy(logits, yb).item(), len(yb))
        model.train()
        return acc.value, loss_avg.value


def make_federated_clients(dataset: ArrayDataset, parts: list[np.ndarray],
                           val_fraction: float = 0.2, batch_size: int = 32,
                           seed: int = 0) -> list[Client]:
    """Build one :class:`Client` per partition index list.

    Each client's shard is further split into a local train set and a local
    validation set — the paper "allocate[s] each client a local non-IID
    training dataset and a validation dataset" (§V-B) and reports the
    average top-1 accuracy over clients.
    """
    clients = []
    for cid, indices in enumerate(parts):
        shard = dataset.subset(indices)
        train, val = train_val_split(shard, val_fraction, seed=seed * 7919 + cid)
        clients.append(Client(client_id=cid, train_data=train, val_data=val,
                              batch_size=batch_size, seed=seed * 104729 + cid))
    return clients
