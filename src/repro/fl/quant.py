"""Low-bit quantized uplink transport (DESIGN.md §16).

SPATL's headline metric is communication cost, and salient selection
already cuts *which* tensors travel; this module cuts *how many bits*
each surviving value costs.  It implements QSGD-style stochastic
quantization (Alistarh et al., the unbiased-rounding line of work in
PAPERS.md) as a wire codec that layers under every algorithm's uplink:

- **stochastic int8/int4 codec** — per-tensor or per-block float32
  scales, unbiased rounding (``E[deq(q(x))] == x`` for in-range values)
  drawn from the run's seeded RNG tree, int4 values bit-packed two per
  byte through vectorized uint8 nibble kernels (no Python loops);
- **self-describing wire records** — a quantized tensor travels as one
  ``name + "\\x00q"`` uint8 entry of the ordinary wire format
  (:mod:`repro.fl.wire`), whose record header carries bits / dtype /
  shape / block size, so a receiver needs no side channel to decode and
  :func:`quant_payload_nbytes` sizes the payload exactly
  (``== payload_nbytes(quantize_payload(...)[0])``);
- **density guard** — an entry is quantized only when its record is
  strictly smaller than its dense encoding, so tiny tensors (scalars,
  short biases) and every non-float entry (int32 indices, BN
  ``num_batches_tracked``) pass through bit-exactly;
- **error feedback** — per-client residuals (the same pattern as
  :class:`repro.fl.topk.FedTopK`): what rounding dropped this round is
  added back before quantizing the next, which keeps aggressive bit
  widths convergent;
- **dequantize-then-fold** — :meth:`repro.fl.base.FederatedAlgorithm`
  feeds aggregation the *decoded* values (exactly what the wire
  carried), so the ledger's quantized byte counts and the model the
  server folds are two views of one payload.

``bits=32`` is the identity configuration: the wire payload is the
unquantized dense encoding, byte-for-byte (CI pins this golden).
``bits=16`` uses the record framing with an fp16 cast (no scales), so
the original float dtype round-trips exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["QuantConfig", "QUANT_SUFFIX", "QUANT_WIRE_KEY",
           "stochastic_quantize", "dequantize_values",
           "pack_nibbles", "unpack_nibbles",
           "encode_record", "decode_record", "record_nbytes",
           "quantize_payload", "dequantize_payload", "quant_payload_nbytes",
           "naive_pack_nibbles", "naive_unpack_nibbles"]

#: Wire-entry name suffix marking a quantized record.  ``"\x00"`` cannot
#: appear in any state-dict key produced by the model layer, so suffixed
#: names can never collide with a dense entry.
QUANT_SUFFIX = "\x00q"

#: Reserved key under which a quantized update dict carries its exact
#: wire payload (set once by ``FederatedAlgorithm.quantize_update``, read
#: by ``wire_payload`` at every charge site), so retransmissions and the
#: async runtime's dedup fingerprints reuse one deterministic encoding.
QUANT_WIRE_KEY = "__wire__"

_QMAX = {8: 127, 4: 7}
_BIAS = {8: 128, 4: 8}
_VALID_BITS = (32, 16, 8, 4)

# Record header: [u8 bits][u8 dtype_code][u8 ndim][u8 flags][u32 block]
# then [u32 dims] * ndim, [f32 scales] * nblocks, packed data bytes.
_HEADER = struct.Struct("<BBBBI")


@dataclass(frozen=True)
class QuantConfig:
    """Uplink quantization knobs (``bits=32`` disables the codec).

    ``block`` is the number of values sharing one float32 scale
    (``0`` = one scale per tensor); ``error_feedback`` keeps per-client
    residuals of the rounding error and folds them into the next round's
    payload.
    """

    bits: int = 32
    block: int = 0
    error_feedback: bool = True

    def __post_init__(self):
        if self.bits not in _VALID_BITS:
            raise ValueError(f"bits must be one of {_VALID_BITS}, "
                             f"got {self.bits}")
        if self.block < 0:
            raise ValueError("block must be >= 0 (0 = per-tensor scales)")

    @property
    def active(self) -> bool:
        """Whether the codec changes the wire at all."""
        return self.bits < 32

    @property
    def key(self) -> tuple:
        """Hashable identity for cache keys (BroadcastCache variant)."""
        return ("quant", self.bits, self.block, self.error_feedback)


def _nblocks(n: int, block: int) -> int:
    return 1 if block == 0 else -(-n // block)


# ------------------------------------------------------------------ core
def stochastic_quantize(values: np.ndarray, bits: int, block: int,
                        rng: np.random.Generator
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Unbiased low-bit quantization of a flat float array.

    Returns ``(codes, scales)``: ``codes`` is a uint8 array of biased
    levels (``q + 2**(bits-1)`` with ``q in [-qmax, qmax]``), ``scales``
    a float32 array with one entry per block (``block == 0`` → one per
    tensor).  Rounding is stochastic — down with probability equal to
    the fractional distance to the grid point above — so
    ``E[scale * q] == x`` for every in-range value; draws come from
    ``rng``, which callers key by ``(seed, "quant", round, client)`` so
    retransmissions and executor replays reproduce the identical codes.
    """
    qmax = _QMAX[bits]
    flat = np.ascontiguousarray(values, dtype=np.float64).ravel()
    n = flat.size
    nb = _nblocks(n, block)
    width = n if block == 0 else block
    padded = flat
    if nb * width != n:
        padded = np.zeros(nb * width, dtype=np.float64)
        padded[:n] = flat
    grid = padded.reshape(nb, width)
    absmax = np.abs(grid).max(axis=1)
    scales = (absmax / qmax).astype(np.float32)
    safe = np.where(scales > 0.0, scales, np.float32(1.0)).astype(np.float64)
    y = grid / safe[:, None]
    lo = np.floor(y)
    # One uniform draw per (padded) slot; padding quantizes to exact 0.
    q = lo + (rng.random(y.shape) < (y - lo))
    np.clip(q, -qmax, qmax, out=q)
    codes = (q + _BIAS[bits]).astype(np.uint8).ravel()[:n]
    return codes, scales


def dequantize_values(codes: np.ndarray, scales: np.ndarray, bits: int,
                      block: int) -> np.ndarray:
    """Inverse of :func:`stochastic_quantize` (flat float32 values)."""
    q = codes.astype(np.float32) - np.float32(_BIAS[bits])
    n = q.size
    if block == 0:
        return q * scales.astype(np.float32)[0]
    nb = _nblocks(n, block)
    padded = q
    if nb * block != n:
        padded = np.zeros(nb * block, dtype=np.float32)
        padded[:n] = q
    out = padded.reshape(nb, block) * scales.astype(np.float32)[:, None]
    return out.ravel()[:n]


# ----------------------------------------------------------- nibble pack
def pack_nibbles(codes: np.ndarray) -> np.ndarray:
    """Pack uint8 values in ``[0, 15]`` two per byte (vectorized).

    Even positions land in the low nibble, odd in the high; an odd-length
    input is padded with a zero nibble that :func:`unpack_nibbles` drops.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if codes.size % 2:
        codes = np.concatenate([codes, np.zeros(1, dtype=np.uint8)])
    return (codes[0::2] | (codes[1::2] << np.uint8(4))).astype(np.uint8)


def unpack_nibbles(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_nibbles`: the first ``n`` nibble values."""
    packed = np.asarray(packed, dtype=np.uint8)
    out = np.empty(2 * packed.size, dtype=np.uint8)
    out[0::2] = packed & np.uint8(0x0F)
    out[1::2] = packed >> np.uint8(4)
    return out[:n]


def naive_pack_nibbles(codes: np.ndarray) -> np.ndarray:
    """Per-element reference packer (the bench's 10x-slower comparator)."""
    codes = list(np.asarray(codes, dtype=np.uint8))
    if len(codes) % 2:
        codes.append(np.uint8(0))
    out = np.empty(len(codes) // 2, dtype=np.uint8)
    for i in range(out.size):
        out[i] = (int(codes[2 * i]) | (int(codes[2 * i + 1]) << 4)) & 0xFF
    return out


def naive_unpack_nibbles(packed: np.ndarray, n: int) -> np.ndarray:
    """Per-element reference unpacker matching :func:`unpack_nibbles`."""
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        byte = int(packed[i // 2])
        out[i] = (byte & 0x0F) if i % 2 == 0 else (byte >> 4)
    return out


# ---------------------------------------------------------- wire records
def _dtype_codes():
    from repro.fl import wire
    return wire._DTYPE_CODE, wire._DTYPES


def record_nbytes(arr: np.ndarray, bits: int, block: int) -> int:
    """Exact byte length of :func:`encode_record`'s output."""
    n = arr.size
    base = _HEADER.size + 4 * arr.ndim
    if bits == 16:
        return base + 2 * n
    data = n if bits == 8 else (n + 1) // 2
    return base + 4 * _nblocks(n, block) + data


def encode_record(arr: np.ndarray, config: QuantConfig,
                  rng: np.random.Generator
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Quantize one tensor into a self-describing uint8 record.

    Returns ``(record, dequantized)`` where ``dequantized`` has the
    original dtype and shape and is *exactly* what
    :func:`decode_record` will reconstruct on the receiving side — the
    value aggregation must fold (dequantize-then-fold) and the value
    error feedback subtracts.
    """
    arr = np.ascontiguousarray(arr)
    codes_map, _ = _dtype_codes()
    if arr.dtype not in codes_map:
        raise TypeError(f"unsupported dtype {arr.dtype} for quantization")
    bits, block = config.bits, config.block
    out = bytearray(record_nbytes(arr, bits, block))
    _HEADER.pack_into(out, 0, bits, codes_map[arr.dtype], arr.ndim, 0, block)
    off = _HEADER.size
    if arr.ndim:
        struct.pack_into(f"<{arr.ndim}I", out, off, *arr.shape)
        off += 4 * arr.ndim
    if bits == 16:
        half = arr.astype(np.float16)
        out[off:off + 2 * arr.size] = half.tobytes()
        deq = half.astype(arr.dtype)
        return np.frombuffer(bytes(out), dtype=np.uint8), deq
    codes, scales = stochastic_quantize(arr, bits, block, rng)
    out[off:off + 4 * scales.size] = scales.tobytes()
    off += 4 * scales.size
    packed = codes if bits == 8 else pack_nibbles(codes)
    out[off:off + packed.size] = packed.tobytes()
    deq = dequantize_values(codes, scales, bits, block) \
        .astype(arr.dtype).reshape(arr.shape)
    return np.frombuffer(bytes(out), dtype=np.uint8), deq


def decode_record(raw: np.ndarray) -> np.ndarray:
    """Reconstruct the dequantized tensor from a wire record.

    Accepts the (possibly read-only, zero-copy) uint8 array a wire
    decode produced; raises :class:`~repro.fl.wire.PayloadError` on
    structural damage rather than mis-slicing silently.
    """
    from repro.fl.wire import PayloadError
    mv = memoryview(np.ascontiguousarray(raw, dtype=np.uint8)).cast("B")
    total = mv.nbytes
    if total < _HEADER.size:
        raise PayloadError("quantized record shorter than its header")
    bits, code, ndim, _flags, block = _HEADER.unpack_from(mv, 0)
    _, dtypes = _dtype_codes()
    if bits not in (16, 8, 4):
        raise PayloadError(f"unknown quantized bit width {bits}")
    if code >= len(dtypes):
        raise PayloadError(f"unknown dtype code {code} in quantized record")
    dtype = dtypes[code]
    off = _HEADER.size
    if total < off + 4 * ndim:
        raise PayloadError("quantized record truncated in its shape")
    shape = struct.unpack_from(f"<{ndim}I", mv, off)
    off += 4 * ndim
    n = 1
    for dim in shape:
        n *= int(dim)
    if bits == 16:
        if total != off + 2 * n:
            raise PayloadError(
                f"fp16 record expects {2 * n} data bytes, has {total - off}")
        half = np.frombuffer(mv, dtype=np.float16, count=n, offset=off)
        return half.astype(dtype).reshape(shape)
    nb = _nblocks(n, block)
    data = n if bits == 8 else (n + 1) // 2
    if total != off + 4 * nb + data:
        raise PayloadError(
            f"int{bits} record expects {4 * nb + data} payload bytes, "
            f"has {total - off}")
    scales = np.frombuffer(mv, dtype=np.float32, count=nb, offset=off)
    off += 4 * nb
    packed = np.frombuffer(mv, dtype=np.uint8, count=data, offset=off)
    codes = packed if bits == 8 else unpack_nibbles(packed, n)
    return dequantize_values(codes, scales, bits, block) \
        .astype(dtype).reshape(shape)


# -------------------------------------------------------- payload level
def _entry_overhead(name: str, ndim: int) -> int:
    """Wire bytes of one entry minus its raw data bytes."""
    return 2 + len(name.encode("utf-8")) + 2 + 4 * ndim


def _quantizes(name: str, arr: np.ndarray, config: QuantConfig) -> bool:
    """Whether ``name`` travels as a quantized record.

    Only float tensors whose record entry is *strictly smaller* than
    their dense entry qualify; everything else — integer indices, bool
    masks, BN step counters, tiny tensors where the record header would
    outweigh the data — passes through bit-exactly.  The rule depends
    only on dtype/shape/config, so :func:`quant_payload_nbytes` and
    :func:`quantize_payload` always agree.
    """
    if not config.active or arr.dtype.kind != "f":
        return False
    dense = _entry_overhead(name, arr.ndim) + arr.nbytes
    record = _entry_overhead(name + QUANT_SUFFIX, 1) \
        + record_nbytes(arr, config.bits, config.block)
    return record < dense


def quantize_payload(payload: dict[str, np.ndarray], config: QuantConfig,
                     rng: np.random.Generator,
                     residuals: dict[str, np.ndarray] | None = None
                     ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Encode an uplink payload; return ``(wire_dict, decoded_dict)``.

    ``wire_dict`` is what crosses the (simulated) network — quantized
    entries as ``name + "\\x00q"`` uint8 records, everything else
    untouched — and ``decoded_dict`` is the receiver's view of it, with
    the original entry names, dtypes, and shapes.  With ``residuals``
    (a per-client dict the caller persists), error feedback adds each
    entry's carried-over rounding error before quantizing and stores the
    new error after; a residual whose shape no longer matches (e.g. a
    salient selection that changed size) is reset rather than misapplied.
    """
    if "\x00" in "".join(payload):
        bad = next(k for k in payload if "\x00" in k)
        raise ValueError(f"payload entry {bad!r} contains NUL, which is "
                         "reserved for quantized-record names")
    wire_dict: dict[str, np.ndarray] = {}
    decoded: dict[str, np.ndarray] = {}
    for name, value in payload.items():
        arr = np.asarray(value)
        if not _quantizes(name, arr, config):
            wire_dict[name] = arr
            decoded[name] = arr
            continue
        x = arr
        if residuals is not None:
            prior = residuals.get(name)
            if prior is not None and prior.shape == arr.shape:
                x = arr + prior.astype(arr.dtype, copy=False)
        record, deq = encode_record(x, config, rng)
        if residuals is not None:
            residuals[name] = (x - deq).astype(arr.dtype, copy=False)
        wire_dict[name + QUANT_SUFFIX] = record
        decoded[name] = deq
    return wire_dict, decoded


def dequantize_payload(wire_dict: dict[str, np.ndarray]
                       ) -> dict[str, np.ndarray]:
    """Receiver-side decode of a :func:`quantize_payload` wire dict."""
    out: dict[str, np.ndarray] = {}
    for name, value in wire_dict.items():
        if name.endswith(QUANT_SUFFIX):
            out[name[:-len(QUANT_SUFFIX)]] = decode_record(value)
        else:
            out[name] = value
    return out


def quant_payload_nbytes(payload: dict[str, np.ndarray],
                         config: QuantConfig,
                         checksums: bool = False) -> int:
    """Exact wire size of the quantized payload, without encoding it.

    Equals ``payload_nbytes(quantize_payload(payload, ...)[0])`` for any
    RNG — record sizes depend only on dtype/shape/config.
    """
    total = 4
    per_entry = 4 if checksums else 0
    for name, value in payload.items():
        arr = np.asarray(value)
        if _quantizes(name, arr, config):
            total += _entry_overhead(name + QUANT_SUFFIX, 1) \
                + record_nbytes(arr, config.bits, config.block) + per_entry
        else:
            total += _entry_overhead(name, arr.ndim) + arr.nbytes + per_entry
    return total


def make_quant_config(bits: int, block: int = 0,
                      error_feedback: bool = True) -> QuantConfig | None:
    """A :class:`QuantConfig` from CLI-style knobs (``None`` when off)."""
    if bits == 32:
        return None
    return QuantConfig(bits=bits, block=block, error_feedback=error_feedback)
