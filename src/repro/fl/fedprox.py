"""FedProx (Li et al., MLSys 2020).

Adds a proximal term ``(mu/2) * ||w - w_global||^2`` to each local
objective, pulling local updates back toward the last global model.  Wire
cost is identical to FedAvg (the paper's Table I shows FedProx at ~1x
per-round cost but more rounds).

Rather than materialising the proximal term in the loss graph, we exploit
its gradient form ``mu * (w - w_global)`` and add it through the SGD
correction hook — mathematically identical and far cheaper.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.fedavg import FedAvg
from repro.fl.local import train_local


class FedProx(FedAvg):
    """FedAvg plus a proximal pull toward the last global model."""
    name = "fedprox"

    def __init__(self, *args, mu: float = 0.01, **kwargs):
        super().__init__(*args, **kwargs)
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.mu = mu

    def local_update(self, client: Client, round_idx: int) -> dict:
        anchor = {name: p.data.copy()
                  for name, p in self.global_model.named_parameters()}
        self._work.load_state_dict(self.global_model.state_dict())
        params = dict(self._work.named_parameters())

        def proximal(name: str, grad: np.ndarray) -> np.ndarray:
            ref = anchor.get(name)
            if ref is None:
                return grad
            return grad + self.mu * (params[name].data - ref)

        loss, steps, _ = train_local(self._work, client, round_idx,
                                  epochs=self.epochs_for(client, round_idx), lr=self.lr,
                                  momentum=self.momentum,
                                  weight_decay=self.weight_decay,
                                  max_grad_norm=self.max_grad_norm,
                                  correction_hook=proximal,
                                  compiler=self.step_compiler)
        return {"state": self._work.state_dict(), "n": client.num_train,
                "train_loss": loss, "steps": steps}
