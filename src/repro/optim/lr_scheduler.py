"""Learning-rate schedules operating on optimizers with an ``lr`` attribute."""

from __future__ import annotations

import math


class _Scheduler:
    def __init__(self, optimizer, base_lr: float | None = None):
        self.optimizer = optimizer
        self.base_lr = float(base_lr if base_lr is not None else optimizer.lr)
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new LR to the optimizer."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class ConstantLR(_Scheduler):
    """No-op schedule (keeps API uniform across experiment configs)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.1,
                 base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max: int, eta_min: float = 0.0,
                 base_lr: float | None = None):
        super().__init__(optimizer, base_lr)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / self.t_max))
