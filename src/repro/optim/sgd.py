"""Stochastic gradient descent with momentum, weight decay, and hooks.

The update is fully in-place (DESIGN.md §10): gradient scaling, weight
decay, and the learning-rate product go through per-optimizer workspace
scratch buffers with ``np.multiply/add/subtract(..., out=)``, keeping
the exact operand order of the allocating form so steps stay
byte-identical.  Aliasing contract: ``p.grad`` itself is never written;
correction hooks receive either ``p.grad`` or an optimizer scratch
buffer and must treat it as read-only borrowed memory — return a fresh
array (as SCAFFOLD/SPATL's ``g + c - c_i`` does) or the argument itself,
and never retain it past the call.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.tensor import workspace

# A correction hook receives (param_name, grad) and returns the corrected
# gradient.  SCAFFOLD / SPATL register ``grad + c - c_i`` here (Eq. 9).
CorrectionHook = Callable[[str, np.ndarray], np.ndarray]


class SGD:
    """SGD over named parameters.

    Parameters
    ----------
    named_params:
        Iterable of ``(name, Parameter)``; names let correction hooks and
        selective updates (encoder-only corrections) address parameters.
    lr, momentum, weight_decay:
        Standard hyper-parameters; ``momentum=0`` disables velocity state.
    max_grad_norm:
        Optional global gradient-norm clip applied before the step
        (the Non-IID benchmark clips at 10 for stability; SCAFFOLD runs in
        the paper diverge *despite* this, which our reproduction preserves
        by keeping clipping off by default).
    """

    def __init__(self, named_params: Iterable[tuple[str, Parameter]], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 max_grad_norm: float | None = None):
        self.params: list[tuple[str, Parameter]] = [(n, p) for n, p in named_params]
        if not self.params:
            raise ValueError("SGD received no parameters")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = max_grad_norm
        self._velocity: dict[str, np.ndarray] = {}
        self._hooks: list[CorrectionHook] = []
        # Flat per-parameter step plan (name, param, g/decay/lrg arena
        # buffers), resolved through the arena once on the first step and
        # then iterated directly: arena buffers are never evicted, so the
        # retained references stay canonical, and a plain list walk beats
        # the per-step keyed lookups for the many tiny parameters a
        # resnet20-scale model carries.
        self._plan: list[tuple[str, Parameter, np.ndarray, np.ndarray,
                               np.ndarray]] | None = None

    def add_correction_hook(self, hook: CorrectionHook) -> None:
        """Register a per-parameter gradient correction (applied in order)."""
        self._hooks.append(hook)

    def clear_correction_hooks(self) -> None:
        self._hooks.clear()

    def zero_grad(self) -> None:
        for _, p in self.params:
            p.grad = None

    def _global_grad_norm(self) -> float:
        sq = 0.0
        for _, p in self.params:
            if p.grad is not None:
                sq += float(np.sum(p.grad.astype(np.float64) ** 2))
        return float(np.sqrt(sq))

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient.

        In-place formulation of ``p -= lr * (scale*g + wd*p)`` (plus hooks
        and momentum): scratch buffers come from this optimizer's
        workspace slot and are reused across parameters of equal
        shape/dtype — safe because each parameter's update completes
        before the next begins.  Every ``out=`` op mirrors one allocating
        op of the original update, same operands, same order.
        """
        scale = 1.0
        if self.max_grad_norm is not None:
            norm = self._global_grad_norm()
            if norm > self.max_grad_norm:
                scale = self.max_grad_norm / (norm + 1e-12)
        plan = self._plan
        if plan is None:
            ws = workspace.slot_for(self)
            plan = self._plan = [
                (name, p,
                 ws.buffer("sgd.g", p.data.shape, p.data.dtype),
                 ws.buffer("sgd.decay", p.data.shape, p.data.dtype),
                 ws.buffer("sgd.lrg", p.data.shape, p.data.dtype))
                for name, p in self.params]
        lr = self.lr
        momentum = self.momentum
        weight_decay = self.weight_decay
        hooks = self._hooks
        velocity = self._velocity
        mul, add, sub = np.multiply, np.add, np.subtract
        for name, p, gbuf, decay, lrg in plan:
            g = p.grad
            if g is None:
                continue
            if scale != 1.0:
                mul(g, scale, gbuf)                         # g * scale
                g = gbuf
            if weight_decay:
                mul(p.data, weight_decay, decay)
                add(g, decay, gbuf)                         # g + wd * p
                g = gbuf
            for hook in hooks:
                g = hook(name, g)
            if momentum:
                v = velocity.get(name)
                if v is None:
                    v = np.zeros_like(p.data)
                    velocity[name] = v
                mul(v, momentum, v)                         # v *= momentum
                add(v, g, v)                                # v += g
                g = v
            mul(g, lr, lrg)                                 # lr * g
            sub(p.data, lrg, p.data)                        # p -= lr * g

    def state_dict(self) -> dict:
        return {"lr": self.lr, "velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self._velocity = {k: v.copy() for k, v in state["velocity"].items()}
