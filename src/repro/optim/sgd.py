"""Stochastic gradient descent with momentum, weight decay, and hooks.

The update is fully in-place (DESIGN.md §10): gradient scaling, weight
decay, and the learning-rate product go through per-optimizer workspace
scratch buffers with ``np.multiply/add/subtract(..., out=)``, keeping
the exact operand order of the allocating form so steps stay
byte-identical.  Aliasing contract: ``p.grad`` itself is never written;
correction hooks receive either ``p.grad`` or an optimizer scratch
buffer and must treat it as read-only borrowed memory — return a fresh
array (as SCAFFOLD/SPATL's ``g + c - c_i`` does) or the argument itself,
and never retain it past the call.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.tensor import workspace

# A correction hook receives (param_name, grad) and returns the corrected
# gradient.  SCAFFOLD / SPATL register ``grad + c - c_i`` here (Eq. 9).
CorrectionHook = Callable[[str, np.ndarray], np.ndarray]


class SGD:
    """SGD over named parameters.

    Parameters
    ----------
    named_params:
        Iterable of ``(name, Parameter)``; names let correction hooks and
        selective updates (encoder-only corrections) address parameters.
    lr, momentum, weight_decay:
        Standard hyper-parameters; ``momentum=0`` disables velocity state.
    max_grad_norm:
        Optional global gradient-norm clip applied before the step
        (the Non-IID benchmark clips at 10 for stability; SCAFFOLD runs in
        the paper diverge *despite* this, which our reproduction preserves
        by keeping clipping off by default).
    """

    def __init__(self, named_params: Iterable[tuple[str, Parameter]], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 max_grad_norm: float | None = None):
        self.params: list[tuple[str, Parameter]] = [(n, p) for n, p in named_params]
        if not self.params:
            raise ValueError("SGD received no parameters")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = max_grad_norm
        self._velocity: dict[str, np.ndarray] = {}
        self._hooks: list[CorrectionHook] = []
        # Per-parameter scratch (g/decay/lrg) resolved through the arena
        # once and then held directly: arena buffers are never evicted,
        # so a retained reference stays the canonical buffer, and skipping
        # the keyed lookup keeps the per-param step cost below the small
        # allocations it replaces.
        self._scratch: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def add_correction_hook(self, hook: CorrectionHook) -> None:
        """Register a per-parameter gradient correction (applied in order)."""
        self._hooks.append(hook)

    def clear_correction_hooks(self) -> None:
        self._hooks.clear()

    def zero_grad(self) -> None:
        for _, p in self.params:
            p.grad = None

    def _global_grad_norm(self) -> float:
        sq = 0.0
        for _, p in self.params:
            if p.grad is not None:
                sq += float(np.sum(p.grad.astype(np.float64) ** 2))
        return float(np.sqrt(sq))

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient.

        In-place formulation of ``p -= lr * (scale*g + wd*p)`` (plus hooks
        and momentum): scratch buffers come from this optimizer's
        workspace slot and are reused across parameters of equal
        shape/dtype — safe because each parameter's update completes
        before the next begins.  Every ``out=`` op mirrors one allocating
        op of the original update, same operands, same order.
        """
        scale = 1.0
        if self.max_grad_norm is not None:
            norm = self._global_grad_norm()
            if norm > self.max_grad_norm:
                scale = self.max_grad_norm / (norm + 1e-12)
        ws = workspace.slot_for(self)
        for name, p in self.params:
            if p.grad is None:
                continue
            scratch = self._scratch.get(name)
            if scratch is None:
                shape, dt = p.data.shape, p.data.dtype
                scratch = self._scratch[name] = (
                    ws.buffer("sgd.g", shape, dt),
                    ws.buffer("sgd.decay", shape, dt),
                    ws.buffer("sgd.lrg", shape, dt))
            gbuf, decay, lrg = scratch
            g = p.grad
            if scale != 1.0:
                np.multiply(g, scale, out=gbuf)             # g * scale
                g = gbuf
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=decay)
                np.add(g, decay, out=gbuf)                  # g + wd * p
                g = gbuf
            for hook in self._hooks:
                g = hook(name, g)
            if self.momentum:
                v = self._velocity.get(name)
                if v is None:
                    v = np.zeros_like(p.data)
                    self._velocity[name] = v
                v *= self.momentum
                v += g
                g = v
            np.multiply(g, self.lr, out=lrg)                # lr * g
            np.subtract(p.data, lrg, out=p.data)            # p -= lr * g

    def state_dict(self) -> dict:
        return {"lr": self.lr, "velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self._velocity = {k: v.copy() for k, v in state["velocity"].items()}
