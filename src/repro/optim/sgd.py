"""Stochastic gradient descent with momentum, weight decay, and hooks."""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.nn.module import Parameter

# A correction hook receives (param_name, grad) and returns the corrected
# gradient.  SCAFFOLD / SPATL register ``grad + c - c_i`` here (Eq. 9).
CorrectionHook = Callable[[str, np.ndarray], np.ndarray]


class SGD:
    """SGD over named parameters.

    Parameters
    ----------
    named_params:
        Iterable of ``(name, Parameter)``; names let correction hooks and
        selective updates (encoder-only corrections) address parameters.
    lr, momentum, weight_decay:
        Standard hyper-parameters; ``momentum=0`` disables velocity state.
    max_grad_norm:
        Optional global gradient-norm clip applied before the step
        (the Non-IID benchmark clips at 10 for stability; SCAFFOLD runs in
        the paper diverge *despite* this, which our reproduction preserves
        by keeping clipping off by default).
    """

    def __init__(self, named_params: Iterable[tuple[str, Parameter]], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 max_grad_norm: float | None = None):
        self.params: list[tuple[str, Parameter]] = [(n, p) for n, p in named_params]
        if not self.params:
            raise ValueError("SGD received no parameters")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = max_grad_norm
        self._velocity: dict[str, np.ndarray] = {}
        self._hooks: list[CorrectionHook] = []

    def add_correction_hook(self, hook: CorrectionHook) -> None:
        """Register a per-parameter gradient correction (applied in order)."""
        self._hooks.append(hook)

    def clear_correction_hooks(self) -> None:
        self._hooks.clear()

    def zero_grad(self) -> None:
        for _, p in self.params:
            p.grad = None

    def _global_grad_norm(self) -> float:
        sq = 0.0
        for _, p in self.params:
            if p.grad is not None:
                sq += float(np.sum(p.grad.astype(np.float64) ** 2))
        return float(np.sqrt(sq))

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        scale = 1.0
        if self.max_grad_norm is not None:
            norm = self._global_grad_norm()
            if norm > self.max_grad_norm:
                scale = self.max_grad_norm / (norm + 1e-12)
        for name, p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if scale != 1.0:
                g = g * scale
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            for hook in self._hooks:
                g = hook(name, g)
            if self.momentum:
                v = self._velocity.get(name)
                if v is None:
                    v = np.zeros_like(p.data)
                    self._velocity[name] = v
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        return {"lr": self.lr, "velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self._velocity = {k: v.copy() for k, v in state["velocity"].items()}
