"""Adam optimizer (used for the PPO salient-parameter agent, §V-A)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class Adam:
    """Adam with bias correction.

    The paper fine-tunes the RL agent with Adam (lr=1e-3); the ``freeze``
    set supports its "only update the MLP output layers" rule by name
    prefix.
    """

    def __init__(self, named_params: Iterable[tuple[str, Parameter]], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        self.params: list[tuple[str, Parameter]] = [(n, p) for n, p in named_params]
        if not self.params:
            raise ValueError("Adam received no parameters")
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0
        self._frozen: set[str] = set()

    def freeze(self, prefixes: Iterable[str]) -> None:
        """Skip updates for parameters whose name starts with any prefix."""
        prefixes = tuple(prefixes)
        for name, _ in self.params:
            if name.startswith(prefixes):
                self._frozen.add(name)

    def unfreeze_all(self) -> None:
        self._frozen.clear()

    def zero_grad(self) -> None:
        for _, p in self.params:
            p.grad = None

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for name, p in self.params:
            if p.grad is None or name in self._frozen:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m = self._m.get(name)
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[name] = m
                self._v[name] = v
            else:
                v = self._v[name]
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
