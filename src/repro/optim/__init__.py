"""Optimizers and LR schedules for the autograd engine.

``SGD`` supports a per-step gradient *correction hook* — the mechanism used
by SCAFFOLD and SPATL's gradient-controlled federated learning to inject the
control-variate term ``(c - c_i)`` into every local step (Eq. 9 of the
paper) without subclassing the optimizer.
"""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import StepLR, CosineAnnealingLR, ConstantLR

__all__ = ["SGD", "Adam", "StepLR", "CosineAnnealingLR", "ConstantLR"]
