"""Simplified computational-graph representation of encoders (§IV-B).

The paper models the network as a computational graph whose nodes are
hidden feature maps and whose edges are machine-learning-level operations
("conv 3x3, ReLU, ..." rather than primitive adds/multiplies).  This
package builds that graph from any registered encoder, exposes it both as
a :class:`networkx.DiGraph` and as (features, adjacency) arrays for the
GNN, and provides the analytic pruned-FLOPs model driven by the same node
metadata.
"""

from repro.graph.compgraph import (GraphNode, CompGraph, build_graph,
                                   to_networkx)
from repro.graph.features import node_feature_matrix, normalized_adjacency, \
    FEATURE_DIM

__all__ = ["GraphNode", "CompGraph", "build_graph", "to_networkx",
           "node_feature_matrix", "normalized_adjacency", "FEATURE_DIM"]
