"""Encoder → simplified computational graph.

One :class:`GraphNode` per feature map; directed edges carry the ML-level
operation that produced the target map.  Prunable nodes correspond to the
conv layers whose output filters the RL agent may sparsify; every node
records which prunable layer (if any) scales its output and input channel
counts (``out_ctrl`` / ``in_ctrl``), which makes pruned-FLOPs computation a
pure function of the graph (``CompGraph.flops_ratio``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.models.cnn import TwoLayerCNNEncoder
from repro.models.resnet import ResNetEncoder
from repro.models.split import EncoderBase
from repro.models.vgg import VGGEncoder

NODE_KINDS = ("input", "conv", "pool", "gap")
EDGE_OPS = ("conv3x3", "conv5x5", "convkxk", "pool", "skip", "gap")


@dataclass
class GraphNode:
    """One feature map in the simplified computational graph."""

    name: str
    kind: str
    out_channels: int
    kernel_size: int = 0
    stride: int = 1
    flops: int = 0
    params: int = 0
    prunable: bool = False
    out_ctrl: str | None = None  # prunable layer scaling this node's outputs
    in_ctrl: str | None = None   # prunable layer scaling this node's inputs


@dataclass
class CompGraph:
    """Node list + (src, dst, op) edges, with FLOPs algebra."""

    nodes: list[GraphNode]
    edges: list[tuple[int, int, str]]
    prunable_names: list[str] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def prunable_indices(self) -> list[int]:
        index = {node.name: i for i, node in enumerate(self.nodes)}
        return [index[name] for name in self.prunable_names]

    def total_flops(self) -> int:
        return sum(node.flops for node in self.nodes)

    def flops_ratio(self, keep: dict[str, float]) -> float:
        """FLOPs of the sub-network keeping fraction ``keep[l]`` of each
        prunable layer's filters, relative to the dense network."""
        total = 0
        kept = 0.0
        for node in self.nodes:
            total += node.flops
            factor = 1.0
            if node.out_ctrl is not None:
                factor *= float(keep.get(node.out_ctrl, 1.0))
            if node.in_ctrl is not None:
                factor *= float(keep.get(node.in_ctrl, 1.0))
            kept += node.flops * factor
        return kept / total if total else 1.0

    def params_ratio(self, keep: dict[str, float]) -> float:
        """Same as :meth:`flops_ratio` but over parameter counts."""
        total = 0
        kept = 0.0
        for node in self.nodes:
            total += node.params
            factor = 1.0
            if node.out_ctrl is not None:
                factor *= float(keep.get(node.out_ctrl, 1.0))
            if node.in_ctrl is not None:
                factor *= float(keep.get(node.in_ctrl, 1.0))
            kept += node.params * factor
        return kept / total if total else 1.0


def _conv_node(name: str, spec, prunable: bool, in_ctrl: str | None) -> GraphNode:
    return GraphNode(
        name=name, kind="conv", out_channels=spec.out_channels,
        kernel_size=spec.kernel_size, stride=spec.stride, flops=spec.flops,
        params=spec.weight_numel, prunable=prunable,
        out_ctrl=spec.name if prunable else None, in_ctrl=in_ctrl)


def build_graph(encoder: EncoderBase,
                input_hw: tuple[int, int] | None = None) -> CompGraph:
    """Build the simplified computational graph of a registered encoder."""
    if isinstance(encoder, ResNetEncoder):
        return _build_resnet_graph(encoder, input_hw)
    if isinstance(encoder, (VGGEncoder, TwoLayerCNNEncoder)):
        return _build_chain_graph(encoder, input_hw)
    return _build_chain_graph(encoder, input_hw)  # generic fallback


def _build_chain_graph(encoder: EncoderBase,
                       input_hw: tuple[int, int] | None) -> CompGraph:
    """Sequential encoders (VGG, 2-layer CNN): a path graph of conv nodes.

    Every prunable conv's output feeds the next conv's input, so node ``i``
    has ``out_ctrl = layer_i`` and ``in_ctrl = layer_{i-1}``.
    """
    specs = encoder.conv_specs(input_hw)
    nodes = [GraphNode(name="input", kind="input",
                       out_channels=getattr(encoder, "in_channels", 3))]
    edges: list[tuple[int, int, str]] = []
    prev_ctrl: str | None = None
    for i, spec in enumerate(specs):
        nodes.append(_conv_node(spec.name, spec, prunable=True,
                                in_ctrl=prev_ctrl))
        op = f"conv{spec.kernel_size}x{spec.kernel_size}"
        edges.append((len(nodes) - 2, len(nodes) - 1, op))
        prev_ctrl = spec.name
    nodes.append(GraphNode(name="head", kind="gap",
                           out_channels=nodes[-1].out_channels,
                           in_ctrl=prev_ctrl))
    edges.append((len(nodes) - 2, len(nodes) - 1, "gap"))
    return CompGraph(nodes, edges, prunable_names=[s.name for s in specs])


def _build_resnet_graph(encoder: ResNetEncoder,
                        input_hw: tuple[int, int] | None) -> CompGraph:
    """ResNet: stem, then per block (conv1 -> conv2+add) with a skip edge.

    Only each block's first conv is prunable; its keep fraction scales both
    conv1's outputs and conv2's inputs, leaving the residual-add width
    intact (option-A shortcuts force equal widths on the add).
    """
    specs = encoder.conv_specs(input_hw)
    hw = input_hw or (encoder.input_size, encoder.input_size)
    stem_flops = 2 * encoder.widths[0] * hw[0] * hw[1] * encoder.in_channels * 9
    nodes = [
        GraphNode(name="input", kind="input", out_channels=encoder.in_channels),
        GraphNode(name="conv1", kind="conv", out_channels=encoder.widths[0],
                  kernel_size=3, stride=1, flops=stem_flops,
                  params=encoder.conv1.weight.size),
    ]
    edges: list[tuple[int, int, str]] = [(0, 1, "conv3x3")]
    block_in = 1  # node index of the block's input feature map
    for spec in specs:
        # conv1 of the block — prunable
        nodes.append(_conv_node(spec.name, spec, prunable=True, in_ctrl=None))
        conv1_idx = len(nodes) - 1
        edges.append((block_in, conv1_idx, "conv3x3"))
        # conv2 + residual add — same spatial size as conv1's output,
        # full width out, pruned width in
        ho, wo = spec.out_hw
        conv2_flops = 2 * spec.out_channels * ho * wo * spec.out_channels * 9
        conv2_params = spec.out_channels * spec.out_channels * 9
        nodes.append(GraphNode(
            name=spec.name.replace("conv1", "conv2"), kind="conv",
            out_channels=spec.out_channels, kernel_size=3, stride=1,
            flops=conv2_flops, params=conv2_params, in_ctrl=spec.name))
        conv2_idx = len(nodes) - 1
        edges.append((conv1_idx, conv2_idx, "conv3x3"))
        edges.append((block_in, conv2_idx, "skip"))
        block_in = conv2_idx
    nodes.append(GraphNode(name="gap", kind="gap",
                           out_channels=encoder.final_channels))
    edges.append((block_in, len(nodes) - 1, "gap"))
    return CompGraph(nodes, edges, prunable_names=[s.name for s in specs])


def to_networkx(graph: CompGraph) -> nx.DiGraph:
    """Export to a networkx DiGraph (analysis, tests, visualisation)."""
    g = nx.DiGraph()
    for i, node in enumerate(graph.nodes):
        g.add_node(i, **vars(node))
    for src, dst, op in graph.edges:
        g.add_edge(src, dst, op=op)
    return g
