"""Numeric node features + normalized adjacency for the GNN.

Feature layout (FEATURE_DIM columns):

0-3   one-hot node kind (input / conv / pool / gap)
4     prunable flag
5     log1p(out_channels) / 8
6     kernel_size / 7
7     stride / 2
8     FLOPs share of the whole graph
9     parameter share
10    depth fraction (topological position)
11    current keep fraction (1.0 dense; the RL environment overwrites this
      column as pruning proceeds, making the state reflect selection so far)
"""

from __future__ import annotations

import numpy as np

from repro.graph.compgraph import CompGraph, NODE_KINDS

FEATURE_DIM = 12


def node_feature_matrix(graph: CompGraph,
                        keep: dict[str, float] | None = None) -> np.ndarray:
    """(n_nodes, FEATURE_DIM) float32 feature matrix."""
    keep = keep or {}
    n = graph.n_nodes
    total_flops = max(graph.total_flops(), 1)
    total_params = max(sum(node.params for node in graph.nodes), 1)
    x = np.zeros((n, FEATURE_DIM), dtype=np.float32)
    for i, node in enumerate(graph.nodes):
        kind_idx = NODE_KINDS.index(node.kind) if node.kind in NODE_KINDS else 1
        x[i, kind_idx] = 1.0
        x[i, 4] = 1.0 if node.prunable else 0.0
        x[i, 5] = np.log1p(node.out_channels) / 8.0
        x[i, 6] = node.kernel_size / 7.0
        x[i, 7] = node.stride / 2.0
        x[i, 8] = node.flops / total_flops
        x[i, 9] = node.params / total_params
        x[i, 10] = i / max(n - 1, 1)
        ctrl = node.out_ctrl
        x[i, 11] = float(keep.get(ctrl, 1.0)) if ctrl else 1.0
    return x


def normalized_adjacency(graph: CompGraph) -> np.ndarray:
    """Symmetric GCN propagation matrix ``D^-1/2 (A + A^T + I) D^-1/2``.

    The graph is treated as undirected for message passing (information
    should flow both down- and up-stream of the network), with self loops.
    """
    n = graph.n_nodes
    a = np.zeros((n, n), dtype=np.float32)
    for src, dst, _ in graph.edges:
        a[src, dst] = 1.0
        a[dst, src] = 1.0
    a += np.eye(n, dtype=np.float32)
    deg = a.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-8))
    return a * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
